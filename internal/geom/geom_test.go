package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRectDegenerate(t *testing.T) {
	cases := []struct {
		top, left, bottom, right int
	}{
		{0, 0, 0, 0},
		{5, 5, 5, 10},
		{5, 5, 10, 5},
		{10, 0, 5, 10},
		{0, 10, 10, 5},
	}
	for _, c := range cases {
		r := NewRect(c.top, c.left, c.bottom, c.right)
		if !r.IsEmpty() {
			t.Errorf("NewRect(%d,%d,%d,%d) = %v, want empty", c.top, c.left, c.bottom, c.right, r)
		}
		if r.Area() != 0 || r.Width() != 0 || r.Height() != 0 {
			t.Errorf("empty rect has nonzero dimensions: %v", r)
		}
	}
}

func TestRectDimensions(t *testing.T) {
	r := NewRect(2, 3, 7, 11)
	if got := r.Height(); got != 5 {
		t.Errorf("Height = %d, want 5", got)
	}
	if got := r.Width(); got != 8 {
		t.Errorf("Width = %d, want 8", got)
	}
	if got := r.Area(); got != 40 {
		t.Errorf("Area = %d, want 40", got)
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(2, 3, 7, 11)
	cases := []struct {
		row, col int
		want     bool
	}{
		{2, 3, true},
		{6, 10, true},
		{7, 10, false},
		{6, 11, false},
		{1, 3, false},
		{2, 2, false},
		{4, 5, true},
	}
	for _, c := range cases {
		if got := r.Contains(c.row, c.col); got != c.want {
			t.Errorf("Contains(%d,%d) = %v, want %v", c.row, c.col, got, c.want)
		}
	}
}

func TestRectContainsRect(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	if !r.ContainsRect(NewRect(2, 2, 5, 5)) {
		t.Error("inner rect should be contained")
	}
	if !r.ContainsRect(EmptyRect) {
		t.Error("empty rect is contained in everything")
	}
	if EmptyRect.ContainsRect(r) {
		t.Error("empty rect contains nothing non-empty")
	}
	if r.ContainsRect(NewRect(2, 2, 11, 5)) {
		t.Error("overhanging rect should not be contained")
	}
	if !r.ContainsRect(r) {
		t.Error("rect contains itself")
	}
}

func TestRectIntersect(t *testing.T) {
	a := NewRect(0, 0, 5, 5)
	b := NewRect(3, 3, 8, 8)
	got := a.Intersect(b)
	want := NewRect(3, 3, 5, 5)
	if got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("Overlaps should be true and symmetric")
	}
	c := NewRect(5, 5, 8, 8) // touches at corner, half-open => disjoint
	if a.Overlaps(c) {
		t.Error("corner-touching half-open rects must not overlap")
	}
	if got := a.Intersect(EmptyRect); !got.IsEmpty() {
		t.Errorf("Intersect with empty = %v, want empty", got)
	}
}

func TestRectUnion(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	b := NewRect(5, 5, 8, 9)
	got := a.Union(b)
	want := NewRect(0, 0, 8, 9)
	if got != want {
		t.Errorf("Union = %v, want %v", got, want)
	}
	if got := a.Union(EmptyRect); got != a {
		t.Errorf("Union with empty = %v, want %v", got, a)
	}
	if got := EmptyRect.Union(b); got != b {
		t.Errorf("empty Union b = %v, want %v", got, b)
	}
}

func TestRectTranslate(t *testing.T) {
	r := NewRect(1, 2, 4, 6)
	got := r.Translate(3, -2)
	want := NewRect(4, 0, 7, 4)
	if got != want {
		t.Errorf("Translate = %v, want %v", got, want)
	}
	if !EmptyRect.Translate(5, 5).IsEmpty() {
		t.Error("translated empty rect must stay empty")
	}
}

func TestRectEq(t *testing.T) {
	if !EmptyRect.Eq(NewRect(3, 3, 3, 7)) {
		t.Error("all empty rects are equal")
	}
	if !NewRect(0, 0, 1, 1).Eq(NewRect(0, 0, 1, 1)) {
		t.Error("identical rects are equal")
	}
	if NewRect(0, 0, 1, 1).Eq(NewRect(0, 0, 2, 1)) {
		t.Error("different rects are not equal")
	}
}

func TestDirectionStrings(t *testing.T) {
	want := map[Direction][2]string{
		Down:  {"Down", "↓"},
		Up:    {"Up", "↑"},
		Right: {"Right", "→"},
		Left:  {"Left", "←"},
	}
	for d, w := range want {
		if d.String() != w[0] {
			t.Errorf("%v.String() = %q, want %q", d, d.String(), w[0])
		}
		if d.Arrow() != w[1] {
			t.Errorf("%v.Arrow() = %q, want %q", d, d.Arrow(), w[1])
		}
	}
	bogus := Direction(200)
	if bogus.Arrow() != "?" {
		t.Errorf("bogus arrow = %q", bogus.Arrow())
	}
}

func TestViewRoundTrip(t *testing.T) {
	const n = 17
	for _, d := range AllDirections {
		v := NewView(n, d)
		if v.N() != n {
			t.Fatalf("N = %d, want %d", v.N(), n)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				pr, pc := v.Apply(i, j)
				if pr < 0 || pr >= n || pc < 0 || pc >= n {
					t.Fatalf("dir %v: Apply(%d,%d) out of range: (%d,%d)", d, i, j, pr, pc)
				}
				lr, lc := v.Invert(pr, pc)
				if lr != i || lc != j {
					t.Fatalf("dir %v: round trip (%d,%d) -> (%d,%d) -> (%d,%d)", d, i, j, pr, pc, lr, lc)
				}
			}
		}
	}
}

func TestViewIsBijection(t *testing.T) {
	const n = 9
	for _, d := range AllDirections {
		v := NewView(n, d)
		seen := make(map[Point]bool, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				pr, pc := v.Apply(i, j)
				p := Point{pr, pc}
				if seen[p] {
					t.Fatalf("dir %v: Apply not injective at (%d,%d)", d, i, j)
				}
				seen[p] = true
			}
		}
	}
}

func TestViewDownIsIdentity(t *testing.T) {
	v := NewView(8, Down)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if r, c := v.Apply(i, j); r != i || c != j {
				t.Fatalf("Down view not identity at (%d,%d): got (%d,%d)", i, j, r, c)
			}
		}
	}
}

func TestViewUpFlipsRows(t *testing.T) {
	v := NewView(5, Up)
	if r, c := v.Apply(0, 2); r != 4 || c != 2 {
		t.Errorf("Up view Apply(0,2) = (%d,%d), want (4,2)", r, c)
	}
}

func TestViewRightTransposes(t *testing.T) {
	v := NewView(5, Right)
	// Logical "down" (increasing logical row) must increase the physical column.
	r0, c0 := v.Apply(0, 1)
	r1, c1 := v.Apply(1, 1)
	if r0 != r1 {
		t.Errorf("Right view: physical row changed (%d -> %d)", r0, r1)
	}
	if c1 != c0+1 {
		t.Errorf("Right view: physical col should advance by 1, got %d -> %d", c0, c1)
	}
}

func TestViewLeftMovesLeft(t *testing.T) {
	v := NewView(5, Left)
	_, c0 := v.Apply(0, 1)
	_, c1 := v.Apply(1, 1)
	if c1 != c0-1 {
		t.Errorf("Left view: physical col should retreat by 1, got %d -> %d", c0, c1)
	}
}

func TestViewApplyRectRoundTrip(t *testing.T) {
	const n = 12
	rnd := rand.New(rand.NewSource(1))
	for _, d := range AllDirections {
		v := NewView(n, d)
		for k := 0; k < 200; k++ {
			t1 := rnd.Intn(n)
			l1 := rnd.Intn(n)
			r := NewRect(t1, l1, t1+1+rnd.Intn(n-t1), l1+1+rnd.Intn(n-l1))
			got := v.InvertRect(v.ApplyRect(r))
			if !got.Eq(r) {
				t.Fatalf("dir %v: rect round trip %v -> %v", d, r, got)
			}
			if v.ApplyRect(r).Area() != r.Area() {
				t.Fatalf("dir %v: rect area changed: %v -> %v", d, r, v.ApplyRect(r))
			}
		}
	}
}

func TestViewApplyRectCoversSameCells(t *testing.T) {
	const n = 7
	for _, d := range AllDirections {
		v := NewView(n, d)
		r := NewRect(1, 2, 4, 6)
		pr := v.ApplyRect(r)
		count := 0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				ri, rj := v.Apply(i, j)
				inLogical := r.Contains(i, j)
				inPhysical := pr.Contains(ri, rj)
				if inLogical != inPhysical {
					t.Fatalf("dir %v: cell (%d,%d) logical=%v physical=%v", d, i, j, inLogical, inPhysical)
				}
				if inLogical {
					count++
				}
			}
		}
		if count != r.Area() {
			t.Fatalf("dir %v: covered %d cells, want %d", d, count, r.Area())
		}
	}
}

func TestViewEmptyRect(t *testing.T) {
	v := NewView(10, Left)
	if !v.ApplyRect(EmptyRect).IsEmpty() {
		t.Error("ApplyRect(empty) must be empty")
	}
	if !v.InvertRect(EmptyRect).IsEmpty() {
		t.Error("InvertRect(empty) must be empty")
	}
}

// Property: Intersect is commutative and contained in both operands.
func TestQuickIntersectProperties(t *testing.T) {
	f := func(a, b uint8, c, d uint8, e, f2, g, h uint8) bool {
		r1 := NewRect(int(a%20), int(b%20), int(a%20)+int(c%10)+1, int(b%20)+int(d%10)+1)
		r2 := NewRect(int(e%20), int(f2%20), int(e%20)+int(g%10)+1, int(f2%20)+int(h%10)+1)
		i1 := r1.Intersect(r2)
		i2 := r2.Intersect(r1)
		if !i1.Eq(i2) {
			return false
		}
		if !r1.ContainsRect(i1) || !r2.ContainsRect(i1) {
			return false
		}
		return r1.Union(r2).ContainsRect(r1) && r1.Union(r2).ContainsRect(r2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNewViewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewView with invalid direction should panic")
		}
	}()
	NewView(4, Direction(99))
}

func TestViewAccessors(t *testing.T) {
	cases := []struct {
		d          Direction
		transposed bool
		flipped    bool
	}{
		{Down, false, false},
		{Up, false, true},
		{Right, true, false},
		{Left, true, true},
	}
	for _, c := range cases {
		v := NewView(9, c.d)
		if v.Transposed() != c.transposed || v.Flipped() != c.flipped {
			t.Errorf("%v: transposed=%v flipped=%v", c.d, v.Transposed(), v.Flipped())
		}
	}
	up := NewView(9, Up)
	if up.FlipIndex(0) != 8 || up.FlipIndex(8) != 0 {
		t.Error("FlipIndex should mirror for flipped views")
	}
	down := NewView(9, Down)
	if down.FlipIndex(3) != 3 {
		t.Error("FlipIndex should be identity for Down")
	}
}
