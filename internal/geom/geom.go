// Package geom provides small geometric primitives used throughout the
// partition-shape machinery: half-open rectangles on the integer lattice,
// points, and the coordinate views that let the Push engine implement a
// single canonical direction (Down) and obtain the other three directions
// (Up, Left, Right) by remapping coordinates.
package geom

import "fmt"

// Point is a cell coordinate (Row, Col) in an N×N matrix. Row 0 is the top
// row and Col 0 is the leftmost column, matching the paper's figures.
type Point struct {
	Row, Col int
}

// Rect is a half-open axis-aligned rectangle of matrix cells:
// rows [Top, Bottom) and columns [Left, Right). The zero Rect is empty.
//
// In the paper's notation (Section IV-A) an enclosing rectangle for
// processor X has edges x_top, x_right, x_bottom, x_left; those map to
// Top, Right-1, Bottom-1 and Left here (the paper uses closed bounds).
type Rect struct {
	Top, Left, Bottom, Right int
}

// EmptyRect is the canonical empty rectangle.
var EmptyRect = Rect{}

// NewRect returns the rectangle spanning rows [top, bottom) and columns
// [left, right). Degenerate inputs collapse to the empty rectangle.
func NewRect(top, left, bottom, right int) Rect {
	if bottom <= top || right <= left {
		return EmptyRect
	}
	return Rect{Top: top, Left: left, Bottom: bottom, Right: right}
}

// IsEmpty reports whether r contains no cells.
func (r Rect) IsEmpty() bool { return r.Bottom <= r.Top || r.Right <= r.Left }

// Width returns the number of columns spanned by r.
func (r Rect) Width() int {
	if r.IsEmpty() {
		return 0
	}
	return r.Right - r.Left
}

// Height returns the number of rows spanned by r.
func (r Rect) Height() int {
	if r.IsEmpty() {
		return 0
	}
	return r.Bottom - r.Top
}

// Area returns the number of cells in r.
func (r Rect) Area() int { return r.Width() * r.Height() }

// Contains reports whether the cell (row, col) lies inside r.
func (r Rect) Contains(row, col int) bool {
	return row >= r.Top && row < r.Bottom && col >= r.Left && col < r.Right
}

// ContainsRect reports whether every cell of s lies inside r. The empty
// rectangle is contained in everything.
func (r Rect) ContainsRect(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	if r.IsEmpty() {
		return false
	}
	return s.Top >= r.Top && s.Bottom <= r.Bottom && s.Left >= r.Left && s.Right <= r.Right
}

// Intersect returns the overlap of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	t := Rect{
		Top:    max(r.Top, s.Top),
		Left:   max(r.Left, s.Left),
		Bottom: min(r.Bottom, s.Bottom),
		Right:  min(r.Right, s.Right),
	}
	if t.IsEmpty() {
		return EmptyRect
	}
	return t
}

// Overlaps reports whether r and s share at least one cell.
func (r Rect) Overlaps(s Rect) bool { return !r.Intersect(s).IsEmpty() }

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		Top:    min(r.Top, s.Top),
		Left:   min(r.Left, s.Left),
		Bottom: max(r.Bottom, s.Bottom),
		Right:  max(r.Right, s.Right),
	}
}

// Translate returns r shifted by (dr, dc).
func (r Rect) Translate(dr, dc int) Rect {
	if r.IsEmpty() {
		return EmptyRect
	}
	return Rect{Top: r.Top + dr, Left: r.Left + dc, Bottom: r.Bottom + dr, Right: r.Right + dc}
}

// Eq reports semantic equality: all empty rectangles are equal.
func (r Rect) Eq(s Rect) bool {
	if r.IsEmpty() && s.IsEmpty() {
		return true
	}
	return r == s
}

func (r Rect) String() string {
	if r.IsEmpty() {
		return "Rect(empty)"
	}
	return fmt.Sprintf("Rect(rows %d..%d, cols %d..%d)", r.Top, r.Bottom-1, r.Left, r.Right-1)
}

// Direction identifies one of the four Push directions from the paper.
type Direction uint8

const (
	// Down moves the active processor's elements from the top edge of its
	// enclosing rectangle into the rows below (the paper's worked example).
	Down Direction = iota
	// Up moves elements from the bottom edge into the rows above.
	Up
	// Right moves elements from the left edge into the columns to the right.
	Right
	// Left moves elements from the right edge into the columns to the left.
	Left
	numDirections
)

// NumDirections is the number of distinct Push directions.
const NumDirections = int(numDirections)

// AllDirections lists every direction in a stable order.
var AllDirections = [4]Direction{Down, Up, Right, Left}

func (d Direction) String() string {
	switch d {
	case Down:
		return "Down"
	case Up:
		return "Up"
	case Right:
		return "Right"
	case Left:
		return "Left"
	}
	return fmt.Sprintf("Direction(%d)", uint8(d))
}

// Arrow returns the paper's arrow notation for d.
func (d Direction) Arrow() string {
	switch d {
	case Down:
		return "↓"
	case Up:
		return "↑"
	case Right:
		return "→"
	case Left:
		return "←"
	}
	return "?"
}

// View maps logical coordinates (in which every Push is a Push Down) onto
// physical matrix coordinates. The Push engine works entirely in logical
// space; a View makes the four physical directions share one code path.
//
// Logical space is always an n×n grid. For Down the mapping is the
// identity; for Up it flips rows; for Right it transposes (logical rows are
// physical columns, so moving "down" logically moves right physically); for
// Left it transposes and flips.
type View struct {
	n         int
	transpose bool
	flip      bool
}

// NewView returns the view that realises Push in direction d on an n×n grid.
func NewView(n int, d Direction) View {
	switch d {
	case Down:
		return View{n: n}
	case Up:
		return View{n: n, flip: true}
	case Right:
		return View{n: n, transpose: true}
	case Left:
		return View{n: n, transpose: true, flip: true}
	}
	panic("geom: invalid direction")
}

// N returns the grid size the view was built for.
func (v View) N() int { return v.n }

// Transposed reports whether logical rows map to physical columns.
func (v View) Transposed() bool { return v.transpose }

// Flipped reports whether logical rows are reversed before transposition.
func (v View) Flipped() bool { return v.flip }

// FlipIndex maps a logical row index through the flip (identity when the
// view is not flipped).
func (v View) FlipIndex(i int) int {
	if v.flip {
		return v.n - 1 - i
	}
	return i
}

// Apply maps a logical (row, col) to the physical (row, col).
func (v View) Apply(row, col int) (int, int) {
	if v.flip {
		row = v.n - 1 - row
	}
	if v.transpose {
		return col, row
	}
	return row, col
}

// Invert maps a physical (row, col) back to logical coordinates. Views are
// involutions up to the order of flip/transpose; Invert is exact.
func (v View) Invert(row, col int) (int, int) {
	if v.transpose {
		row, col = col, row
	}
	if v.flip {
		row = v.n - 1 - row
	}
	return row, col
}

// ApplyRect maps a logical rectangle to the physical rectangle covering the
// same cells.
func (v View) ApplyRect(r Rect) Rect {
	if r.IsEmpty() {
		return EmptyRect
	}
	r1, c1 := v.Apply(r.Top, r.Left)
	r2, c2 := v.Apply(r.Bottom-1, r.Right-1)
	return NewRect(min(r1, r2), min(c1, c2), max(r1, r2)+1, max(c1, c2)+1)
}

// InvertRect maps a physical rectangle to logical coordinates.
func (v View) InvertRect(r Rect) Rect {
	if r.IsEmpty() {
		return EmptyRect
	}
	r1, c1 := v.Invert(r.Top, r.Left)
	r2, c2 := v.Invert(r.Bottom-1, r.Right-1)
	return NewRect(min(r1, r2), min(c1, c2), max(r1, r2)+1, max(c1, c2)+1)
}
