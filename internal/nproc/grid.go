// Package nproc generalises the Push search beyond three processors — the
// extension the paper's conclusion (§XI) names as the natural next step
// ("a fundamental requirement of this program is that it must also be
// applicable beyond the three processor case. It can easily be adapted to
// form partition shapes for any number of processors").
//
// The package provides a K-processor partition grid with the same O(1)
// Volume-of-Communication bookkeeping as the three-processor grid, the
// K-processor Push operation (same six types, same two-cursor legality
// search, same ΔVoC contracts), and the randomised DFA runner. Processor
// 0 is the fastest (the analogue of P); every other processor can be
// pushed.
package nproc

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"repro/internal/geom"
)

// MaxProcs bounds the processor count (rendering glyphs and sanity).
const MaxProcs = 10

// Ratio is the relative speed of each processor, fastest first
// (ratio[0] ≥ ratio[1] ≥ … > 0). The slowest is conventionally 1.
type Ratio []float64

// Validate checks positivity, ordering and length.
func (r Ratio) Validate() error {
	if len(r) < 2 {
		return fmt.Errorf("nproc: need at least 2 processors, got %d", len(r))
	}
	if len(r) > MaxProcs {
		return fmt.Errorf("nproc: at most %d processors, got %d", MaxProcs, len(r))
	}
	for i, v := range r {
		if v <= 0 {
			return fmt.Errorf("nproc: speed %d is %v, must be positive", i, v)
		}
		if i > 0 && v > r[i-1] {
			return fmt.Errorf("nproc: speeds must be non-increasing (fastest first)")
		}
	}
	return nil
}

// T returns the speed sum.
func (r Ratio) T() float64 {
	var t float64
	for _, v := range r {
		t += v
	}
	return t
}

// Counts apportions n² elements proportionally to speed with
// largest-remainder rounding.
func (r Ratio) Counts(n int) []int {
	area := n * n
	t := r.T()
	counts := make([]int, len(r))
	fracs := make([]float64, len(r))
	assigned := 0
	for i, v := range r {
		exact := float64(area) * v / t
		counts[i] = int(exact)
		fracs[i] = exact - float64(counts[i])
		assigned += counts[i]
	}
	for assigned < area {
		best := 0
		for i := 1; i < len(r); i++ {
			if fracs[i] > fracs[best] {
				best = i
			}
		}
		counts[best]++
		fracs[best] = -1
		assigned++
	}
	return counts
}

func (r Ratio) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = fmt.Sprintf("%g", v)
	}
	return strings.Join(parts, ":")
}

// Grid is a K-processor partition of an n×n matrix with incremental
// occupancy counters.
type Grid struct {
	n, k   int
	cells  []uint8
	rowCnt []int32 // [i*k+p]
	colCnt []int32
	rowOcc []int16
	colOcc []int16
	total  []int
	voc    int
}

// NewGrid returns an n×n grid with k processors, all cells assigned to
// processor 0 (the fastest).
func NewGrid(n, k int) *Grid {
	if n <= 0 {
		panic("nproc: grid size must be positive")
	}
	if k < 2 || k > MaxProcs {
		panic("nproc: processor count out of range")
	}
	g := &Grid{
		n:      n,
		k:      k,
		cells:  make([]uint8, n*n),
		rowCnt: make([]int32, n*k),
		colCnt: make([]int32, n*k),
		rowOcc: make([]int16, n),
		colOcc: make([]int16, n),
		total:  make([]int, k),
	}
	for i := 0; i < n; i++ {
		g.rowCnt[i*k] = int32(n)
		g.colCnt[i*k] = int32(n)
		g.rowOcc[i] = 1
		g.colOcc[i] = 1
	}
	g.total[0] = n * n
	return g
}

// N returns the matrix dimension; K the processor count.
func (g *Grid) N() int { return g.n }

// K returns the processor count.
func (g *Grid) K() int { return g.k }

// At returns the processor owning cell (i, j).
func (g *Grid) At(i, j int) int { return int(g.cells[i*g.n+j]) }

// Set assigns cell (i, j) to processor p in O(1).
func (g *Grid) Set(i, j, p int) {
	if p < 0 || p >= g.k {
		panic("nproc: invalid processor")
	}
	idx := i*g.n + j
	old := int(g.cells[idx])
	if old == p {
		return
	}
	g.cells[idx] = uint8(p)
	g.total[old]--
	g.total[p]++

	ro, rn := i*g.k+old, i*g.k+p
	g.rowCnt[ro]--
	if g.rowCnt[ro] == 0 {
		g.rowOcc[i]--
		g.voc--
	}
	if g.rowCnt[rn] == 0 {
		g.rowOcc[i]++
		g.voc++
	}
	g.rowCnt[rn]++

	co, cn := j*g.k+old, j*g.k+p
	g.colCnt[co]--
	if g.colCnt[co] == 0 {
		g.colOcc[j]--
		g.voc--
	}
	if g.colCnt[cn] == 0 {
		g.colOcc[j]++
		g.voc++
	}
	g.colCnt[cn]++
}

// Count returns ∈p.
func (g *Grid) Count(p int) int { return g.total[p] }

// RowHas / ColHas report line occupancy.
func (g *Grid) RowHas(i, p int) bool { return g.rowCnt[i*g.k+p] > 0 }

// ColHas reports whether column j contains processor p.
func (g *Grid) ColHas(j, p int) bool { return g.colCnt[j*g.k+p] > 0 }

// VoC returns Eq 1 generalised to K processors, in elements.
func (g *Grid) VoC() int64 { return int64(g.voc) * int64(g.n) }

// EnclosingRect returns processor p's enclosing rectangle.
func (g *Grid) EnclosingRect(p int) geom.Rect {
	if g.total[p] == 0 {
		return geom.EmptyRect
	}
	top, bottom := -1, -1
	for i := 0; i < g.n; i++ {
		if g.RowHas(i, p) {
			if top < 0 {
				top = i
			}
			bottom = i
		}
	}
	left, right := -1, -1
	for j := 0; j < g.n; j++ {
		if g.ColHas(j, p) {
			if left < 0 {
				left = j
			}
			right = j
		}
	}
	return geom.NewRect(top, left, bottom+1, right+1)
}

// Clone deep-copies the grid.
func (g *Grid) Clone() *Grid {
	return &Grid{
		n: g.n, k: g.k,
		cells:  append([]uint8(nil), g.cells...),
		rowCnt: append([]int32(nil), g.rowCnt...),
		colCnt: append([]int32(nil), g.colCnt...),
		rowOcc: append([]int16(nil), g.rowOcc...),
		colOcc: append([]int16(nil), g.colOcc...),
		total:  append([]int(nil), g.total...),
		voc:    g.voc,
	}
}

// Equal reports identical assignments.
func (g *Grid) Equal(o *Grid) bool {
	if g.n != o.n || g.k != o.k {
		return false
	}
	for i, v := range g.cells {
		if v != o.cells[i] {
			return false
		}
	}
	return true
}

// Fingerprint hashes the assignment.
func (g *Grid) Fingerprint() uint64 {
	h := fnv.New64a()
	h.Write(g.cells)
	return h.Sum64()
}

// Validate recomputes the counters from scratch.
func (g *Grid) Validate() error {
	total := make([]int, g.k)
	rowCnt := make([]int32, g.n*g.k)
	colCnt := make([]int32, g.n*g.k)
	for i := 0; i < g.n; i++ {
		for j := 0; j < g.n; j++ {
			p := int(g.cells[i*g.n+j])
			if p >= g.k {
				return fmt.Errorf("nproc: invalid processor %d at (%d,%d)", p, i, j)
			}
			total[p]++
			rowCnt[i*g.k+p]++
			colCnt[j*g.k+p]++
		}
	}
	voc := 0
	for i := 0; i < g.n; i++ {
		occR, occC := 0, 0
		for p := 0; p < g.k; p++ {
			if rowCnt[i*g.k+p] != g.rowCnt[i*g.k+p] {
				return fmt.Errorf("nproc: row %d count for %d drifted", i, p)
			}
			if colCnt[i*g.k+p] != g.colCnt[i*g.k+p] {
				return fmt.Errorf("nproc: col %d count for %d drifted", i, p)
			}
			if rowCnt[i*g.k+p] > 0 {
				occR++
			}
			if colCnt[i*g.k+p] > 0 {
				occC++
			}
		}
		if int16(occR) != g.rowOcc[i] || int16(occC) != g.colOcc[i] {
			return fmt.Errorf("nproc: occupancy drifted at line %d", i)
		}
		voc += occR - 1 + occC - 1
	}
	for p := range total {
		if total[p] != g.total[p] {
			return fmt.Errorf("nproc: total for %d drifted", p)
		}
	}
	if voc != g.voc {
		return fmt.Errorf("nproc: VoC drifted: cached %d actual %d", g.voc, voc)
	}
	return nil
}

// NewRandom builds the randomised start state: all cells on processor 0,
// then each slower processor claims its quota at uniform random positions
// still owned by 0 (the §VI-A.2 procedure, generalised).
func NewRandom(n int, ratio Ratio, rng *rand.Rand) (*Grid, error) {
	if err := ratio.Validate(); err != nil {
		return nil, err
	}
	g := NewGrid(n, len(ratio))
	counts := ratio.Counts(n)
	for p := 1; p < len(ratio); p++ {
		remaining := counts[p]
		for remaining > 0 {
			i, j := rng.Intn(n), rng.Intn(n)
			if g.At(i, j) == 0 {
				g.Set(i, j, p)
				remaining--
			}
		}
	}
	return g, nil
}

// RenderASCII draws the grid at reduced granularity; processor 0 renders
// as '.', the rest as '1'..'9'.
func (g *Grid) RenderASCII(boxes int) string {
	if boxes <= 0 || boxes > g.n {
		boxes = g.n
	}
	var sb strings.Builder
	tally := make([]int, g.k)
	for bi := 0; bi < boxes; bi++ {
		r0, r1 := bi*g.n/boxes, (bi+1)*g.n/boxes
		for bj := 0; bj < boxes; bj++ {
			c0, c1 := bj*g.n/boxes, (bj+1)*g.n/boxes
			for p := range tally {
				tally[p] = 0
			}
			for i := r0; i < r1; i++ {
				for j := c0; j < c1; j++ {
					tally[g.At(i, j)]++
				}
			}
			best := 0
			for p := 1; p < g.k; p++ {
				// Ties break toward slower processors so small regions
				// stay visible.
				if tally[p] >= tally[best] && tally[p] > 0 {
					if tally[p] > tally[best] || best == 0 {
						best = p
					}
				}
			}
			if best == 0 {
				sb.WriteByte('.')
			} else {
				sb.WriteByte(byte('0' + best))
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
