package nproc

import (
	"fmt"
	"math"
)

// BuildStrips constructs the traditional K-processor partition: vertical
// strips with widths proportional to speed, fastest first. Every row
// hosts all K processors, so the normalised VoC is (K−1)·N² — the
// baseline the corner shapes are measured against.
func BuildStrips(n int, ratio Ratio) (*Grid, error) {
	if err := ratio.Validate(); err != nil {
		return nil, err
	}
	g := NewGrid(n, len(ratio))
	counts := ratio.Counts(n)
	// Column-major fill from the right, slowest processor first, so the
	// fastest (processor 0) keeps the leftmost strip.
	col, row := n-1, 0
	for p := len(ratio) - 1; p >= 1; p-- {
		for c := 0; c < counts[p]; c++ {
			g.Set(row, col, p)
			row++
			if row == n {
				row = 0
				col--
			}
		}
	}
	return g, nil
}

// BuildCornerSquares generalises the Square-Corner to K processors: each
// slower processor receives a near-square in its own matrix corner (up to
// four slower processors), the fastest keeps the remainder. Feasible when
// the squares fit without meeting: opposite corners may not overlap
// diagonally and adjacent corners may not overlap along their shared
// side.
func BuildCornerSquares(n int, ratio Ratio) (*Grid, error) {
	if err := ratio.Validate(); err != nil {
		return nil, err
	}
	k := len(ratio)
	if k-1 > 4 {
		return nil, fmt.Errorf("nproc: corner-squares supports at most 4 slower processors, got %d", k-1)
	}
	counts := ratio.Counts(n)
	sides := make([]int, k)
	for p := 1; p < k; p++ {
		sides[p] = int(math.Ceil(math.Sqrt(float64(counts[p]))))
		if sides[p] > n {
			return nil, fmt.Errorf("nproc: square %d side %d exceeds N=%d", p, sides[p], n)
		}
	}
	// Corner order: bottom-left, top-right, top-left, bottom-right —
	// pairs of adjacent processors share at most one matrix side.
	type corner struct{ anchorRow, anchorCol int } // 0 = top/left, 1 = bottom/right
	corners := []corner{{1, 0}, {0, 1}, {0, 0}, {1, 1}}
	// Feasibility: squares on the same side must not overlap.
	sideAt := func(p int) int {
		if p >= 1 && p < k {
			return sides[p]
		}
		return 0
	}
	// bottom-left(1) vs top-left(3) share the left side; bottom-left vs
	// bottom-right(4) share the bottom; top-right(2) vs top-left share
	// the top; top-right vs bottom-right share the right; and diagonal
	// pairs must not cross in both dimensions.
	checks := [][2]int{{1, 3}, {1, 4}, {2, 3}, {2, 4}}
	for _, c := range checks {
		if c[0] < k && c[1] < k && sideAt(c[0])+sideAt(c[1]) > n {
			return nil, fmt.Errorf("nproc: corner squares %d and %d (sides %d+%d) exceed N=%d",
				c[0], c[1], sideAt(c[0]), sideAt(c[1]), n)
		}
	}
	for _, c := range [][2]int{{1, 2}, {3, 4}} { // diagonals
		if c[0] < k && c[1] < k && sideAt(c[0])+sideAt(c[1]) > n {
			return nil, fmt.Errorf("nproc: diagonal squares %d and %d exceed N=%d", c[0], c[1], n)
		}
	}

	g := NewGrid(n, k)
	for p := 1; p < k; p++ {
		co := corners[p-1]
		side := sides[p]
		remaining := counts[p]
		for r := 0; r < side && remaining > 0; r++ {
			for c := 0; c < side && remaining > 0; c++ {
				i, j := r, c
				if co.anchorRow == 1 {
					i = n - 1 - r
				}
				if co.anchorCol == 1 {
					j = n - 1 - c
				}
				g.Set(i, j, p)
				remaining--
			}
		}
	}
	return g, nil
}

// NormalizedStripsVoC is the closed-form strips baseline: every row hosts
// all K processors and columns are pure, so VoC/N² = K−1.
func NormalizedStripsVoC(k int) float64 { return float64(k - 1) }

// NormalizedCornerSquaresVoC is the closed-form corner-squares volume:
// each square of fraction f_p contributes 2√f_p (its rows and columns).
func NormalizedCornerSquaresVoC(ratio Ratio) float64 {
	t := ratio.T()
	var v float64
	for p := 1; p < len(ratio); p++ {
		v += 2 * math.Sqrt(ratio[p]/t)
	}
	return v
}

// BuildBand generalises the Block-Rectangle to K processors: the slower
// processors share a full-width bottom band, side by side, each a block
// of the band's height; the fastest keeps the rest. This is the strongest
// rectangular baseline for moderate heterogeneity (the K-processor
// analogue of Section IX's Type 4).
func BuildBand(n int, ratio Ratio) (*Grid, error) {
	if err := ratio.Validate(); err != nil {
		return nil, err
	}
	k := len(ratio)
	counts := ratio.Counts(n)
	band := 0
	for p := 1; p < k; p++ {
		band += counts[p]
	}
	h := (band + n - 1) / n
	if h > n {
		return nil, fmt.Errorf("nproc: band height %d exceeds N=%d", h, n)
	}
	g := NewGrid(n, k)
	// Fill the band column-major from the left, slow processors in
	// order; any slack stays with processor 0 at the band's right end.
	col, row := 0, n-1
	for p := 1; p < k; p++ {
		for c := 0; c < counts[p]; c++ {
			g.Set(row, col, p)
			row--
			if row < n-h {
				row = n - 1
				col++
			}
		}
	}
	return g, nil
}

// NormalizedBandVoC is the closed-form band baseline: every band row
// crosses all K−1 side-by-side blocks (cost K−2 per row over height
// Σf_p) and every column hosts two processors (cost 1). For K=3 this is
// the Block-Rectangle's 1 + Σf.
func NormalizedBandVoC(ratio Ratio) float64 {
	t := ratio.T()
	k := len(ratio)
	var slow float64
	for p := 1; p < k; p++ {
		slow += ratio[p] / t
	}
	return 1 + float64(k-2)*slow
}
