package nproc

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func ratio4() Ratio { return Ratio{4, 2, 1, 1} }

func TestRatioValidate(t *testing.T) {
	cases := []struct {
		r       Ratio
		wantErr bool
	}{
		{Ratio{2, 1}, false},
		{Ratio{5, 3, 2, 1}, false},
		{Ratio{1}, true},
		{Ratio{1, 2}, true},     // increasing
		{Ratio{2, 0}, true},     // non-positive
		{make(Ratio, 11), true}, // too many
	}
	for _, c := range cases {
		err := c.r.Validate()
		if (err != nil) != c.wantErr {
			t.Errorf("Validate(%v) err=%v, wantErr=%v", c.r, err, c.wantErr)
		}
	}
}

func TestRatioCountsSum(t *testing.T) {
	for _, n := range []int{10, 37, 100} {
		counts := ratio4().Counts(n)
		sum := 0
		for _, c := range counts {
			sum += c
		}
		if sum != n*n {
			t.Errorf("n=%d: counts sum %d", n, sum)
		}
	}
}

func TestGridBasics(t *testing.T) {
	g := NewGrid(10, 4)
	if g.N() != 10 || g.K() != 4 {
		t.Fatal("dims")
	}
	if g.Count(0) != 100 || g.VoC() != 0 {
		t.Fatal("initial state")
	}
	g.Set(3, 4, 2)
	if g.At(3, 4) != 2 || g.Count(2) != 1 {
		t.Fatal("Set/At")
	}
	if g.VoC() != 20 { // one shared row + one shared column
		t.Fatalf("VoC = %d", g.VoC())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	c := g.Clone()
	c.Set(0, 0, 1)
	if g.At(0, 0) != 0 {
		t.Fatal("clone leak")
	}
	if g.Equal(c) || !g.Equal(g.Clone()) {
		t.Fatal("Equal")
	}
	if g.Fingerprint() == c.Fingerprint() {
		t.Fatal("fingerprints should differ")
	}
}

func TestGridPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewGrid(0, 3) },
		func() { NewGrid(5, 1) },
		func() { NewGrid(5, 99) },
		func() { NewGrid(5, 3).Set(0, 0, 7) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestNewRandomCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := NewRandom(40, ratio4(), rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := ratio4().Counts(40)
	for p, want := range counts {
		if g.Count(p) != want {
			t.Errorf("Count(%d) = %d, want %d", p, g.Count(p), want)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRandom(10, Ratio{1, 2}, rng); err == nil {
		t.Error("invalid ratio should error")
	}
}

func TestPushNeverIncreasesVoC4Proc(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := NewRandom(24, ratio4(), rng)
	if err != nil {
		t.Fatal(err)
	}
	voc := g.VoC()
	committed := 0
	for i := 0; i < 500; i++ {
		p := 1 + rng.Intn(3)
		d := geom.AllDirections[rng.Intn(4)]
		if _, ok := AttemptAny(g, p, d, nil); ok {
			committed++
		}
		if g.VoC() > voc {
			t.Fatalf("VoC rose %d -> %d", voc, g.VoC())
		}
		voc = g.VoC()
	}
	if committed == 0 {
		t.Fatal("expected some pushes")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPushInvariants4Proc(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, err := NewRandom(20, ratio4(), rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for p := range counts {
		counts[p] = g.Count(p)
	}
	for i := 0; i < 300; i++ {
		p := 1 + rng.Intn(3)
		d := geom.AllDirections[rng.Intn(4)]
		before := g.EnclosingRect(p)
		if _, ok := AttemptAny(g, p, d, nil); ok {
			if !before.ContainsRect(g.EnclosingRect(p)) {
				t.Fatal("active rect grew")
			}
		}
		for q := range counts {
			if g.Count(q) != counts[q] {
				t.Fatalf("count(%d) changed", q)
			}
		}
	}
}

func TestPushRejectsProcessorZero(t *testing.T) {
	g := NewGrid(10, 3)
	if _, ok := AttemptAny(g, 0, geom.Down, nil); ok {
		t.Fatal("the fastest processor must never be pushed")
	}
	if _, ok := AttemptAny(g, 5, geom.Down, nil); ok {
		t.Fatal("out-of-range processor must fail")
	}
}

func TestRunConverges4Proc(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		res, err := Run(RunConfig{N: 36, Ratio: ratio4(), Seed: seed, FullDirections: true})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Errorf("seed %d: no convergence in %d steps", seed, res.Steps)
		}
		if res.FinalVoC > res.InitialVoC {
			t.Errorf("seed %d: VoC rose", seed)
		}
		if err := res.Final.Validate(); err != nil {
			t.Error(err)
		}
		// A condensed 4-processor state should have shed a large share of
		// the start state's communication volume.
		if drop := 1 - float64(res.FinalVoC)/float64(res.InitialVoC); drop < 0.2 {
			t.Errorf("seed %d: only %.0f%% VoC drop", seed, 100*drop)
		}
	}
}

func TestRunFiveProcessors(t *testing.T) {
	res, err := Run(RunConfig{N: 40, Ratio: Ratio{8, 4, 2, 1, 1}, Seed: 2, FullDirections: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("5-processor run did not converge")
	}
	if res.FinalVoC >= res.InitialVoC {
		t.Fatal("expected VoC reduction")
	}
}

func TestRunTwoProcessorsMatchesPriorWork(t *testing.T) {
	// With K=2 the generalised engine is the prior work's two-processor
	// Push: the slow processor condenses toward a compact region.
	res, err := Run(RunConfig{N: 40, Ratio: Ratio{3, 1}, Seed: 3, FullDirections: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("2-processor run did not converge")
	}
	slow := res.Final.EnclosingRect(1)
	slack := slow.Area() - res.Final.Count(1)
	if float64(slack) > 0.25*float64(res.Final.Count(1)) {
		t.Errorf("slow processor far from compact: rect %v area %d count %d",
			slow, slow.Area(), res.Final.Count(1))
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(RunConfig{N: 1, Ratio: Ratio{2, 1}}); err == nil {
		t.Error("N=1 should error")
	}
	if _, err := Run(RunConfig{N: 20, Ratio: Ratio{1, 2}}); err == nil {
		t.Error("bad ratio should error")
	}
}

func TestRenderASCII4Proc(t *testing.T) {
	g := NewGrid(40, 4)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			g.Set(i, j, 1)
			g.Set(i+20, j+20, 2)
			g.Set(i, j+30, 3)
		}
	}
	out := g.RenderASCII(20)
	for _, glyph := range []string{"1", "2", "3", "."} {
		if !strings.Contains(out, glyph) {
			t.Errorf("render missing %q:\n%s", glyph, out)
		}
	}
}

func TestQuickGridMutations(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGrid(12, 4)
		for i := 0; i < 200; i++ {
			g.Set(rng.Intn(12), rng.Intn(12), rng.Intn(4))
		}
		sum := 0
		for p := 0; p < 4; p++ {
			sum += g.Count(p)
		}
		return sum == 144 && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRun4Proc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(RunConfig{N: 50, Ratio: ratio4(), Seed: int64(i), FullDirections: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBuildStrips(t *testing.T) {
	ratio := Ratio{4, 2, 1, 1}
	const n = 80
	g, err := BuildStrips(n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := ratio.Counts(n)
	for p, want := range counts {
		if g.Count(p) != want {
			t.Errorf("Count(%d) = %d, want %d", p, g.Count(p), want)
		}
	}
	// Strips: VoC ≈ (K−1)·N² (every row hosts all K processors, up to
	// the ragged boundary columns).
	want := NormalizedStripsVoC(len(ratio)) * float64(n*n)
	if got := float64(g.VoC()); got < want*0.95 || got > want*1.1 {
		t.Errorf("strips VoC %v, closed form %v", got, want)
	}
	if _, err := BuildStrips(10, Ratio{1, 2}); err == nil {
		t.Error("invalid ratio should error")
	}
}

func TestBuildCornerSquares(t *testing.T) {
	ratio := Ratio{20, 1, 1, 1, 1} // four slow corner squares
	const n = 120
	g, err := BuildCornerSquares(n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := ratio.Counts(n)
	for p, want := range counts {
		if g.Count(p) != want {
			t.Errorf("Count(%d) = %d, want %d", p, g.Count(p), want)
		}
	}
	want := NormalizedCornerSquaresVoC(ratio) * float64(n*n)
	if got := float64(g.VoC()); got < want*0.9 || got > want*1.15 {
		t.Errorf("corner squares VoC %v, closed form %v", got, want)
	}
}

func TestBuildCornerSquaresErrors(t *testing.T) {
	if _, err := BuildCornerSquares(40, Ratio{2, 2, 2, 1, 1, 1}); err == nil {
		t.Error("5 slow processors must be rejected")
	}
	// Two equal-share squares on the diagonal (each side ≈ 0.58·N)
	// cannot fit together.
	if _, err := BuildCornerSquares(20, Ratio{1, 1, 1}); err == nil {
		t.Error("oversized squares must be rejected")
	}
	if _, err := BuildCornerSquares(10, Ratio{1, 2}); err == nil {
		t.Error("invalid ratio must be rejected")
	}
}

func TestKProcCrossover(t *testing.T) {
	// The three-processor crossover generalises: for K=4 with ratio
	// x:1:1:1, corner squares beat the band baseline once x is large
	// enough (6/√T = 1+3/T ⇒ √T = 3+√6, x ≈ 26.7) and lose below it.
	lowX, highX := 3.0, 40.0
	low := Ratio{lowX, 1, 1, 1}
	high := Ratio{highX, 1, 1, 1}
	if NormalizedCornerSquaresVoC(low) < NormalizedBandVoC(low) {
		t.Errorf("at x=%v corner squares should lose to the band: %v vs %v",
			lowX, NormalizedCornerSquaresVoC(low), NormalizedBandVoC(low))
	}
	if NormalizedCornerSquaresVoC(high) > NormalizedBandVoC(high) {
		t.Errorf("at x=%v corner squares should win: %v vs %v",
			highX, NormalizedCornerSquaresVoC(high), NormalizedBandVoC(high))
	}
	// The strips baseline is dominated by the band everywhere.
	if NormalizedBandVoC(low) >= NormalizedStripsVoC(4) {
		t.Error("band should beat strips")
	}
	// Concrete grids agree with the closed forms' ordering at high x.
	const n = 100
	cs, err := BuildCornerSquares(n, high)
	if err != nil {
		t.Fatal(err)
	}
	band, err := BuildBand(n, high)
	if err != nil {
		t.Fatal(err)
	}
	if cs.VoC() >= band.VoC() {
		t.Errorf("at x=%v grids disagree: corners %d vs band %d", highX, cs.VoC(), band.VoC())
	}
	st, err := BuildStrips(n, high)
	if err != nil {
		t.Fatal(err)
	}
	if band.VoC() >= st.VoC() {
		t.Errorf("band %d should beat strips %d", band.VoC(), st.VoC())
	}
}

func TestBuildBandCounts(t *testing.T) {
	ratio := Ratio{5, 2, 1, 1}
	const n = 90
	g, err := BuildBand(n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := ratio.Counts(n)
	for p, want := range counts {
		if g.Count(p) != want {
			t.Errorf("Count(%d) = %d, want %d", p, g.Count(p), want)
		}
	}
	want := NormalizedBandVoC(ratio) * float64(n*n)
	if got := float64(g.VoC()); got < want*0.9 || got > want*1.2 {
		t.Errorf("band VoC %v, closed form %v", got, want)
	}
	if _, err := BuildBand(10, Ratio{1, 2}); err == nil {
		t.Error("invalid ratio should error")
	}
}

func TestCornerSquaresArePushStable(t *testing.T) {
	// Like the 3-processor candidates, the K-processor corner squares
	// admit no VoC-decreasing Push.
	ratio := Ratio{20, 1, 1, 1}
	g, err := BuildCornerSquares(90, ratio)
	if err != nil {
		t.Fatal(err)
	}
	for p := 1; p < len(ratio); p++ {
		for _, d := range geom.AllDirections {
			for _, ty := range []Type{TypeOne, TypeTwo, TypeThree, TypeFour} {
				c := g.Clone()
				if res, ok := Attempt(c, p, d, ty, nil); ok {
					t.Errorf("push %d %v %v improved corner squares by %d", p, d, ty, res.DeltaVoC)
				}
			}
		}
	}
}
