package nproc

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
)

// Type mirrors the six Push legality regimes of Section IV-A, generalised
// to K processors (identical parameters; the displaced processor may be
// any processor other than the active one).
type Type uint8

// The six types.
const (
	TypeOne Type = 1 + iota
	TypeTwo
	TypeThree
	TypeFour
	TypeFive
	TypeSix
)

// AllTypes in strongest-first order.
var AllTypes = []Type{TypeOne, TypeTwo, TypeThree, TypeFour, TypeFive, TypeSix}

func (t Type) params() (dirtyLimit int, ownerStrict, strictDecrease bool) {
	switch t {
	case TypeOne:
		return 0, true, true
	case TypeTwo:
		return -1, true, true
	case TypeThree:
		return 0, false, true
	case TypeFour:
		return -1, false, true
	case TypeFive:
		return 1, true, false
	case TypeSix:
		return -1, false, false
	}
	panic("nproc: invalid type")
}

// Result describes a committed Push.
type Result struct {
	Active   int
	Dir      geom.Direction
	Type     Type
	Moved    int
	DeltaVoC int64
}

type vgrid struct {
	g *Grid
	v geom.View
}

func (vg vgrid) at(i, j int) int {
	pi, pj := vg.v.Apply(i, j)
	return vg.g.At(pi, pj)
}

func (vg vgrid) set(i, j, p int) {
	pi, pj := vg.v.Apply(i, j)
	vg.g.Set(pi, pj, p)
}

func (vg vgrid) rowHas(i, p int) bool {
	if vg.v.Transposed() {
		return vg.g.ColHas(vg.v.FlipIndex(i), p)
	}
	return vg.g.RowHas(vg.v.FlipIndex(i), p)
}

func (vg vgrid) colHas(j, p int) bool {
	if vg.v.Transposed() {
		return vg.g.RowHas(j, p)
	}
	return vg.g.ColHas(j, p)
}

func (vg vgrid) rect(p int) geom.Rect {
	return vg.v.InvertRect(vg.g.EnclosingRect(p))
}

type cursor struct {
	g, h   int
	bounds geom.Rect
}

func newCursor(rect geom.Rect) cursor {
	return cursor{g: rect.Top + 1, h: rect.Left, bounds: rect}
}

func (c *cursor) valid() bool { return c.g < c.bounds.Bottom }

func (c *cursor) advance() {
	c.h++
	if c.h >= c.bounds.Right {
		c.h = c.bounds.Left
		c.g++
	}
}

// Attempt tries a single K-processor Push; identical legality machinery
// to the three-processor engine (three-tier monotone cursors and the
// per-type ΔVoC contract). Processor 0 — the fastest — is never pushed.
func Attempt(g *Grid, active int, dir geom.Direction, t Type, accept func(*Grid) bool) (Result, bool) {
	if active <= 0 || active >= g.k {
		return Result{}, false
	}
	dirtyLimit, ownerStrict, strictDecrease := t.params()
	vg := vgrid{g: g, v: geom.NewView(g.n, dir)}
	rect := vg.rect(active)
	if rect.IsEmpty() || rect.Height() < 2 {
		return Result{}, false
	}
	vocBefore := g.VoC()
	activeRectBefore := g.EnclosingRect(active)
	top := rect.Top

	type undoCell struct {
		i, j, prev int
	}
	var undo []undoCell
	rollback := func() {
		for i := len(undo) - 1; i >= 0; i-- {
			vg.set(undo[i].i, undo[i].j, undo[i].prev)
		}
	}

	moved, dirtied := 0, 0
	curA, curB, curC := newCursor(rect), newCursor(rect), newCursor(rect)
	place := func(j int, cur *cursor, tier int) bool {
		for cur.valid() {
			cg, ch := cur.g, cur.h
			owner := vg.at(cg, ch)
			if owner == active {
				cur.advance()
				continue
			}
			willDirty := 0
			if !vg.rowHas(cg, active) {
				willDirty++
			}
			if !vg.colHas(ch, active) {
				willDirty++
			}
			ok := true
			switch tier {
			case 0: // strict
				ok = willDirty == 0 && vg.rowHas(top, owner) && vg.colHas(j, owner)
			case 1: // amortised
				ok = willDirty == 0 && vg.colHas(j, owner)
			default: // typed
				if dirtyLimit >= 0 && dirtied+willDirty > dirtyLimit {
					ok = false
				}
				if ok && ownerStrict && (!vg.rowHas(top, owner) || !vg.colHas(j, owner)) {
					ok = false
				}
			}
			if ok {
				undo = append(undo, undoCell{top, j, active}, undoCell{cg, ch, owner})
				vg.set(top, j, owner)
				vg.set(cg, ch, active)
				dirtied += willDirty
				moved++
				cur.advance()
				return true
			}
			cur.advance()
		}
		return false
	}

	for j := rect.Left; j < rect.Right; j++ {
		if vg.at(top, j) != active {
			continue
		}
		if place(j, &curA, 0) {
			continue
		}
		if !ownerStrict && place(j, &curB, 1) {
			continue
		}
		if !place(j, &curC, 2) {
			rollback()
			return Result{}, false
		}
	}
	if moved == 0 {
		return Result{}, false
	}
	delta := g.VoC() - vocBefore
	if delta > 0 || (strictDecrease && delta >= 0) {
		rollback()
		return Result{}, false
	}
	if !activeRectBefore.ContainsRect(g.EnclosingRect(active)) {
		rollback()
		return Result{}, false
	}
	if accept != nil && !accept(g) {
		rollback()
		return Result{}, false
	}
	return Result{Active: active, Dir: dir, Type: t, Moved: moved, DeltaVoC: delta}, true
}

// AttemptAny tries the types in order.
func AttemptAny(g *Grid, active int, dir geom.Direction, accept func(*Grid) bool) (Result, bool) {
	for _, t := range AllTypes {
		if res, ok := Attempt(g, active, dir, t, accept); ok {
			return res, true
		}
	}
	return Result{}, false
}

// RunConfig parameterises a K-processor DFA run.
type RunConfig struct {
	N     int
	Ratio Ratio
	Seed  int64
	// MaxSteps bounds committed pushes (0 = 40·N·(K−1)).
	MaxSteps int
	// FullDirections gives every processor all four directions instead of
	// the paper's random subsets.
	FullDirections bool
}

// RunResult reports a completed K-processor run.
type RunResult struct {
	Final                *Grid
	Steps                int
	InitialVoC, FinalVoC int64
	Converged            bool
	Plan                 map[int][]geom.Direction
}

// Run executes the generalised DFA: every slower processor is pushed in
// its (randomised) direction set until no legal Push remains.
func Run(cfg RunConfig) (*RunResult, error) {
	if cfg.N <= 1 {
		return nil, fmt.Errorf("nproc: N must be ≥ 2")
	}
	if err := cfg.Ratio.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g, err := NewRandom(cfg.N, cfg.Ratio, rng)
	if err != nil {
		return nil, err
	}
	k := len(cfg.Ratio)
	plan := make(map[int][]geom.Direction, k-1)
	for p := 1; p < k; p++ {
		if cfg.FullDirections {
			plan[p] = append([]geom.Direction(nil), geom.AllDirections[:]...)
			continue
		}
		cnt := 1 + rng.Intn(geom.NumDirections)
		perm := rng.Perm(geom.NumDirections)
		dirs := make([]geom.Direction, cnt)
		for i := 0; i < cnt; i++ {
			dirs[i] = geom.AllDirections[perm[i]]
		}
		plan[p] = dirs
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 40 * cfg.N * (k - 1)
	}

	res := &RunResult{Plan: plan, InitialVoC: g.VoC()}
	plateau := map[uint64]bool{g.Fingerprint(): true}
	lastVoC := g.VoC()
	accept := func(t *Grid) bool {
		if t.VoC() < lastVoC {
			return true
		}
		fp := t.Fingerprint()
		if plateau[fp] {
			return false
		}
		plateau[fp] = true
		return true
	}
	steps := 0
	for steps < maxSteps {
		progressed := false
		order := rng.Perm(k - 1)
		for _, oi := range order {
			p := oi + 1
			for _, d := range plan[p] {
				if r, ok := AttemptAny(g, p, d, accept); ok {
					steps++
					progressed = true
					if r.DeltaVoC < 0 {
						lastVoC = g.VoC()
						plateau = map[uint64]bool{g.Fingerprint(): true}
					}
					if steps >= maxSteps {
						res.Final, res.Steps, res.FinalVoC = g, steps, g.VoC()
						return res, nil
					}
				}
			}
		}
		if !progressed {
			res.Converged = true
			break
		}
	}
	res.Final, res.Steps, res.FinalVoC = g, steps, g.VoC()
	return res, nil
}
