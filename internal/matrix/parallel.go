package matrix

import (
	"runtime"
	"sync"
)

// MulParallel computes C += A·B splitting rows of C across workers
// goroutines (0 selects GOMAXPROCS). Each worker runs the kij order over
// its row band, so per-element summation order matches MulKIJ exactly and
// results are bit-identical to the serial kernel.
func MulParallel(c, a, b *Dense, workers int) {
	checkTriple(c, a, b)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := a.n
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		MulKIJ(c, a, b)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		r0 := w * n / workers
		r1 := (w + 1) * n / workers
		if r0 == r1 {
			continue
		}
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			for k := 0; k < n; k++ {
				brow := b.data[k*n : (k+1)*n]
				for i := r0; i < r1; i++ {
					aik := a.data[i*n+k]
					if aik == 0 {
						continue
					}
					crow := c.data[i*n : (i+1)*n]
					for j := 0; j < n; j++ {
						crow[j] += aik * brow[j]
					}
				}
			}
		}(r0, r1)
	}
	wg.Wait()
}

// Flops returns the number of floating-point operations (multiply-adds
// counted as 2) a full n×n MMM performs: 2n³.
func Flops(n int) int64 {
	nn := int64(n)
	return 2 * nn * nn * nn
}
