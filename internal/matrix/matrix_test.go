package matrix

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randomPair(n int, seed int64) (*Dense, *Dense) {
	rng := rand.New(rand.NewSource(seed))
	a := New(n)
	b := New(n)
	a.FillRandom(rng)
	b.FillRandom(rng)
	return a, b
}

func TestNewZeroed(t *testing.T) {
	m := New(5)
	if m.N() != 5 {
		t.Fatalf("N = %d, want 5", m.N())
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("New not zeroed at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1) should panic")
		}
	}()
	New(-1)
}

func TestSetAtRow(t *testing.T) {
	m := New(4)
	m.Set(2, 3, 7.5)
	if got := m.At(2, 3); got != 7.5 {
		t.Errorf("At = %v, want 7.5", got)
	}
	row := m.Row(2)
	if row[3] != 7.5 {
		t.Errorf("Row slice = %v", row)
	}
	row[0] = -1 // live slice
	if m.At(2, 0) != -1 {
		t.Error("Row must return a live slice")
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Errorf("FromRows content wrong: %v", m)
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows should error")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New(3)
	m.Set(1, 1, 5)
	c := m.Clone()
	c.Set(1, 1, 9)
	if m.At(1, 1) != 5 {
		t.Error("Clone must be independent")
	}
	if !m.Equal(m.Clone()) {
		t.Error("Clone must equal original")
	}
}

func TestIdentityMultiplication(t *testing.T) {
	const n = 9
	a, _ := randomPair(n, 3)
	id := Identity(n)
	c := New(n)
	MulKIJ(c, a, id)
	if !c.ApproxEqual(a, 0) {
		t.Error("A·I != A under kij")
	}
	c.Zero()
	MulKIJ(c, id, a)
	if !c.ApproxEqual(a, 0) {
		t.Error("I·A != A under kij")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	tr := m.Transpose()
	if tr.At(0, 1) != 3 || tr.At(1, 0) != 2 {
		t.Errorf("Transpose wrong: %v", tr)
	}
	if !m.Transpose().Transpose().Equal(m) {
		t.Error("double transpose must be identity")
	}
}

func TestKernelsAgree(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 33, 64, 100} {
		a, b := randomPair(n, int64(n))
		want := New(n)
		MulIJK(want, a, b)

		kij := New(n)
		MulKIJ(kij, a, b)
		if d, _ := kij.MaxDiff(want); d > 1e-12*float64(n) {
			t.Errorf("n=%d: kij vs ijk max diff %g", n, d)
		}

		blk := New(n)
		MulBlocked(blk, a, b, 8)
		if d, _ := blk.MaxDiff(want); d > 1e-12*float64(n) {
			t.Errorf("n=%d: blocked vs ijk max diff %g", n, d)
		}

		par := New(n)
		MulParallel(par, a, b, 4)
		if !par.Equal(kij) {
			t.Errorf("n=%d: parallel kij must be bit-identical to serial kij", n)
		}
	}
}

func TestMulBlockedDefaultBlock(t *testing.T) {
	n := 70
	a, b := randomPair(n, 9)
	want := New(n)
	MulKIJ(want, a, b)
	got := New(n)
	MulBlocked(got, a, b, 0) // DefaultBlock
	if d, _ := got.MaxDiff(want); d > 1e-10 {
		t.Errorf("default block diff %g", d)
	}
}

func TestMulKIJStepAccumulates(t *testing.T) {
	const n = 12
	a, b := randomPair(n, 11)
	want := New(n)
	MulKIJ(want, a, b)
	got := New(n)
	for k := 0; k < n; k++ {
		MulKIJStep(got, a, b, k)
	}
	if !got.Equal(want) {
		t.Error("sum of kij steps must equal full kij (identical order)")
	}
}

func TestMulKIJStepOutOfRangePanics(t *testing.T) {
	a := New(3)
	b := New(3)
	c := New(3)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for pivot out of range")
		}
	}()
	MulKIJStep(c, a, b, 3)
}

func TestMulSubKIJCoversExactlyRegion(t *testing.T) {
	const n = 10
	a, b := randomPair(n, 21)
	full := New(n)
	MulKIJ(full, a, b)
	c := New(n)
	MulSubKIJ(c, a, b, 2, 6, 3, 9)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			inside := i >= 2 && i < 6 && j >= 3 && j < 9
			if inside && c.At(i, j) != full.At(i, j) {
				t.Fatalf("(%d,%d) inside region differs", i, j)
			}
			if !inside && c.At(i, j) != 0 {
				t.Fatalf("(%d,%d) outside region was touched", i, j)
			}
		}
	}
}

func TestMulSubKIJTiling(t *testing.T) {
	// Two disjoint row/col tiles covering the matrix reproduce the full
	// product exactly (this is what a rectangular partition computes).
	const n = 8
	a, b := randomPair(n, 5)
	want := New(n)
	MulKIJ(want, a, b)
	got := New(n)
	MulSubKIJ(got, a, b, 0, 5, 0, n)
	MulSubKIJ(got, a, b, 5, n, 0, n)
	if !got.Equal(want) {
		t.Error("row-band tiling must reproduce the full product")
	}
}

func TestMulMaskedMatchesSub(t *testing.T) {
	const n = 9
	a, b := randomPair(n, 8)
	mask := make([]bool, n*n)
	for i := 1; i < 5; i++ {
		for j := 2; j < 7; j++ {
			mask[i*n+j] = true
		}
	}
	viaMask := New(n)
	MulMasked(viaMask, a, b, mask)
	viaSub := New(n)
	MulSubKIJ(viaSub, a, b, 1, 5, 2, 7)
	if !viaMask.Equal(viaSub) {
		t.Error("masked kernel must match sub kernel on a rectangle")
	}
}

func TestMulMaskedNonRectangularCover(t *testing.T) {
	// An arbitrary 3-way disjoint mask cover reproduces the full product —
	// the correctness basis for non-rectangular partitions.
	const n = 11
	a, b := randomPair(n, 13)
	want := New(n)
	MulKIJ(want, a, b)

	rng := rand.New(rand.NewSource(42))
	masks := make([][]bool, 3)
	for p := range masks {
		masks[p] = make([]bool, n*n)
	}
	for idx := 0; idx < n*n; idx++ {
		masks[rng.Intn(3)][idx] = true
	}
	got := New(n)
	for _, m := range masks {
		MulMasked(got, a, b, m)
	}
	if !got.Equal(want) {
		t.Error("3-way masked cover must reproduce the full kij product")
	}
}

func TestAliasPanics(t *testing.T) {
	a := New(4)
	b := New(4)
	for _, f := range []func(){
		func() { MulKIJ(a, a, b) },
		func() { MulIJK(b, a, b) },
		func() { MulBlocked(a, a, b, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("aliased destination should panic")
				}
			}()
			f()
		}()
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch should panic")
		}
	}()
	MulKIJ(New(3), New(4), New(4))
}

func TestMaxDiffDimensionError(t *testing.T) {
	if _, err := New(3).MaxDiff(New(4)); err == nil {
		t.Error("MaxDiff should error on dimension mismatch")
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m, _ := FromRows([][]float64{{3, 0}, {0, 4}})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-15 {
		t.Errorf("‖m‖F = %v, want 5", got)
	}
}

func TestStringForms(t *testing.T) {
	small := New(2)
	if !strings.Contains(small.String(), "0.0000") {
		t.Errorf("small String: %q", small.String())
	}
	big := New(20)
	if !strings.Contains(big.String(), "20×20") {
		t.Errorf("big String: %q", big.String())
	}
}

func TestFillSequentialDeterministic(t *testing.T) {
	a := New(6)
	b := New(6)
	a.FillSequential()
	b.FillSequential()
	if !a.Equal(b) {
		t.Error("FillSequential must be deterministic")
	}
	if a.At(0, 0) != 0 {
		t.Error("first element must be 0")
	}
}

func TestFlops(t *testing.T) {
	if got := Flops(10); got != 2000 {
		t.Errorf("Flops(10) = %d, want 2000", got)
	}
	if got := Flops(5000); got != 2*5000*5000*5000 {
		t.Errorf("Flops(5000) overflowed: %d", got)
	}
}

func TestMulParallelWorkerEdgeCases(t *testing.T) {
	const n = 5
	a, b := randomPair(n, 17)
	want := New(n)
	MulKIJ(want, a, b)
	for _, w := range []int{0, 1, 2, n, n + 10} {
		got := New(n)
		MulParallel(got, a, b, w)
		if !got.Equal(want) {
			t.Errorf("workers=%d: mismatch", w)
		}
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ within tolerance.
func TestQuickTransposeProduct(t *testing.T) {
	f := func(seed int64) bool {
		n := 6
		a, b := randomPair(n, seed)
		ab := New(n)
		MulKIJ(ab, a, b)
		btat := New(n)
		MulKIJ(btat, b.Transpose(), a.Transpose())
		return ab.Transpose().ApproxEqual(btat, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: multiplication distributes over matrix addition.
func TestQuickDistributive(t *testing.T) {
	f := func(seed int64) bool {
		n := 5
		rng := rand.New(rand.NewSource(seed))
		a := New(n)
		b := New(n)
		c := New(n)
		a.FillRandom(rng)
		b.FillRandom(rng)
		c.FillRandom(rng)
		// A·(B+C)
		bc := New(n)
		for i := range bc.data {
			bc.data[i] = b.data[i] + c.data[i]
		}
		left := New(n)
		MulKIJ(left, a, bc)
		// A·B + A·C
		right := New(n)
		MulKIJ(right, a, b)
		MulKIJ(right, a, c) // accumulates
		return left.ApproxEqual(right, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMulKIJ(b *testing.B) {
	for _, n := range []int{64, 128, 256} {
		a, x := randomPair(n, 1)
		c := New(n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.SetBytes(int64(8 * n * n))
			for i := 0; i < b.N; i++ {
				c.Zero()
				MulKIJ(c, a, x)
			}
		})
	}
}

func BenchmarkMulBlocked(b *testing.B) {
	for _, n := range []int{128, 256} {
		a, x := randomPair(n, 1)
		c := New(n)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.Zero()
				MulBlocked(c, a, x, 0)
			}
		})
	}
}

func BenchmarkMulParallel(b *testing.B) {
	n := 256
	a, x := randomPair(n, 1)
	c := New(n)
	for i := 0; i < b.N; i++ {
		c.Zero()
		MulParallel(c, a, x, 0)
	}
}

func sizeName(n int) string {
	return "n" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Property: matrix multiplication is associative within tolerance.
func TestQuickAssociative(t *testing.T) {
	f := func(seed int64) bool {
		const n = 5
		rng := rand.New(rand.NewSource(seed))
		a, b2, c := New(n), New(n), New(n)
		a.FillRandom(rng)
		b2.FillRandom(rng)
		c.FillRandom(rng)
		ab := New(n)
		MulKIJ(ab, a, b2)
		abc1 := New(n)
		MulKIJ(abc1, ab, c)
		bc := New(n)
		MulKIJ(bc, b2, c)
		abc2 := New(n)
		MulKIJ(abc2, a, bc)
		return abc1.ApproxEqual(abc2, 1e-11)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
