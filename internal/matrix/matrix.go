// Package matrix provides the dense linear-algebra substrate for the
// partition-shape study: square float64 matrices and several matrix-matrix
// multiplication kernels built around the kij loop order that the paper's
// communication analysis assumes (Section II, Fig 1).
//
// The kernels are deliberately self-contained (no BLAS): the paper's local
// multiplications used ATLAS, which we substitute with our own serial,
// blocked and parallel kij kernels. What matters for the study is the
// *communication* structure, which is independent of the local kernel.
package matrix

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Dense is a square row-major matrix of float64.
type Dense struct {
	n    int
	data []float64
}

// New returns an n×n zero matrix.
func New(n int) *Dense {
	if n < 0 {
		panic("matrix: negative dimension")
	}
	return &Dense{n: n, data: make([]float64, n*n)}
}

// FromRows builds a matrix from row slices. All rows must have equal length
// n and there must be n of them.
func FromRows(rows [][]float64) (*Dense, error) {
	n := len(rows)
	m := New(n)
	for i, r := range rows {
		if len(r) != n {
			return nil, fmt.Errorf("matrix: row %d has length %d, want %d", i, len(r), n)
		}
		copy(m.data[i*n:(i+1)*n], r)
	}
	return m, nil
}

// N returns the dimension.
func (m *Dense) N() int { return m.n }

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float64 { return m.data[i*m.n+j] }

// Set assigns the element at (i, j).
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.n+j] = v }

// Row returns the i-th row as a live slice (mutations are visible).
func (m *Dense) Row(i int) []float64 { return m.data[i*m.n : (i+1)*m.n] }

// Data returns the backing slice (row-major, length n²).
func (m *Dense) Data() []float64 { return m.data }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := New(m.n)
	copy(c.data, m.data)
	return c
}

// Zero resets every element to 0.
func (m *Dense) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// FillRandom fills the matrix with uniform values in [-1, 1) from rng.
func (m *Dense) FillRandom(rng *rand.Rand) {
	for i := range m.data {
		m.data[i] = 2*rng.Float64() - 1
	}
}

// FillSequential fills with a deterministic pattern useful in tests:
// element (i,j) = i*n + j, scaled to keep magnitudes small.
func (m *Dense) FillSequential() {
	scale := 1.0 / float64(m.n*m.n)
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			m.Set(i, j, float64(i*m.n+j)*scale)
		}
	}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := New(n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Transpose returns a newly allocated transpose of m.
func (m *Dense) Transpose() *Dense {
	t := New(m.n)
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Equal reports exact element-wise equality.
func (m *Dense) Equal(o *Dense) bool {
	if m.n != o.n {
		return false
	}
	for i, v := range m.data {
		if v != o.data[i] {
			return false
		}
	}
	return true
}

// MaxDiff returns the maximum absolute element-wise difference, or an error
// when the dimensions differ.
func (m *Dense) MaxDiff(o *Dense) (float64, error) {
	if m.n != o.n {
		return 0, errors.New("matrix: dimension mismatch")
	}
	var d float64
	for i, v := range m.data {
		d = math.Max(d, math.Abs(v-o.data[i]))
	}
	return d, nil
}

// ApproxEqual reports whether every element differs by at most tol.
func (m *Dense) ApproxEqual(o *Dense, tol float64) bool {
	d, err := m.MaxDiff(o)
	return err == nil && d <= tol
}

// FrobeniusNorm returns sqrt(sum of squares of elements).
func (m *Dense) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// String renders small matrices for debugging; larger matrices are
// summarised by dimension and norm.
func (m *Dense) String() string {
	if m.n > 8 {
		return fmt.Sprintf("Dense(%d×%d, ‖·‖F=%.4g)", m.n, m.n, m.FrobeniusNorm())
	}
	var b strings.Builder
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			fmt.Fprintf(&b, "%8.4f ", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func checkTriple(c, a, b *Dense) {
	if a.n != b.n || a.n != c.n {
		panic("matrix: dimension mismatch")
	}
	if c == a || c == b {
		panic("matrix: destination must not alias an operand")
	}
}

// MulKIJ computes C += A·B with the paper's kij loop order: for each pivot
// k, every element of C is updated using column k of A and row k of B
// (Fig 1). C must be zeroed first for a plain product.
func MulKIJ(c, a, b *Dense) {
	checkTriple(c, a, b)
	n := a.n
	for k := 0; k < n; k++ {
		brow := b.data[k*n : (k+1)*n]
		for i := 0; i < n; i++ {
			aik := a.data[i*n+k]
			if aik == 0 {
				continue
			}
			crow := c.data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				crow[j] += aik * brow[j]
			}
		}
	}
}

// MulKIJStep performs a single pivot step k of the kij algorithm:
// C[i,j] += A[i,k]*B[k,j] for all i, j. This is the unit of progress the
// Parallel Interleaving Overlap (PIO) algorithm pipelines.
func MulKIJStep(c, a, b *Dense, k int) {
	checkTriple(c, a, b)
	n := a.n
	if k < 0 || k >= n {
		panic("matrix: pivot out of range")
	}
	brow := b.data[k*n : (k+1)*n]
	for i := 0; i < n; i++ {
		aik := a.data[i*n+k]
		if aik == 0 {
			continue
		}
		crow := c.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			crow[j] += aik * brow[j]
		}
	}
}

// MulIJK computes C += A·B in the classic ijk order. Used as an
// independent oracle for the kij kernels in tests.
func MulIJK(c, a, b *Dense) {
	checkTriple(c, a, b)
	n := a.n
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += a.data[i*n+k] * b.data[k*n+j]
			}
			c.data[i*n+j] += s
		}
	}
}

// DefaultBlock is the cache-blocking factor used by MulBlocked when the
// caller passes 0.
const DefaultBlock = 64

// MulBlocked computes C += A·B with cache blocking (kij inside blocks).
// block <= 0 selects DefaultBlock.
func MulBlocked(c, a, b *Dense, block int) {
	checkTriple(c, a, b)
	if block <= 0 {
		block = DefaultBlock
	}
	n := a.n
	for kk := 0; kk < n; kk += block {
		kmax := min(kk+block, n)
		for ii := 0; ii < n; ii += block {
			imax := min(ii+block, n)
			for jj := 0; jj < n; jj += block {
				jmax := min(jj+block, n)
				for k := kk; k < kmax; k++ {
					brow := b.data[k*n : (k+1)*n]
					for i := ii; i < imax; i++ {
						aik := a.data[i*n+k]
						if aik == 0 {
							continue
						}
						crow := c.data[i*n : (i+1)*n]
						for j := jj; j < jmax; j++ {
							crow[j] += aik * brow[j]
						}
					}
				}
			}
		}
	}
}

// MulSubKIJ updates only the C elements inside rows [r0,r1) × cols [c0,c1),
// consuming the full A column / B row for each pivot. This is the kernel a
// single processor runs on its assigned region of C when the region is a
// rectangle.
func MulSubKIJ(c, a, b *Dense, r0, r1, c0, c1 int) {
	checkTriple(c, a, b)
	n := a.n
	if r0 < 0 || r1 > n || c0 < 0 || c1 > n || r0 > r1 || c0 > c1 {
		panic("matrix: sub-range out of bounds")
	}
	for k := 0; k < n; k++ {
		brow := b.data[k*n : (k+1)*n]
		for i := r0; i < r1; i++ {
			aik := a.data[i*n+k]
			if aik == 0 {
				continue
			}
			crow := c.data[i*n : (i+1)*n]
			for j := c0; j < c1; j++ {
				crow[j] += aik * brow[j]
			}
		}
	}
}

// MulMaskedStep performs pivot step k of the kij algorithm restricted to
// the masked elements of C: C[i,j] += A[i,k]·B[k,j] for every (i,j) with
// mask set. Summation order per element matches MulKIJ exactly, so a
// disjoint mask cover accumulated step by step is bit-identical to the
// serial kernel.
func MulMaskedStep(c, a, b *Dense, mask []bool, k int) {
	checkTriple(c, a, b)
	n := a.n
	if len(mask) != n*n {
		panic("matrix: mask length mismatch")
	}
	if k < 0 || k >= n {
		panic("matrix: pivot out of range")
	}
	brow := b.data[k*n : (k+1)*n]
	for i := 0; i < n; i++ {
		aik := a.data[i*n+k]
		mrow := mask[i*n : (i+1)*n]
		crow := c.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			if mrow[j] {
				crow[j] += aik * brow[j]
			}
		}
	}
}

// MulMasked updates only the C elements whose mask entry is true. mask is
// row-major of length n². It is the kernel a processor runs when its
// assigned region is an arbitrary (possibly non-rectangular) shape, exactly
// what non-traditional partitions require.
func MulMasked(c, a, b *Dense, mask []bool) {
	checkTriple(c, a, b)
	n := a.n
	if len(mask) != n*n {
		panic("matrix: mask length mismatch")
	}
	for k := 0; k < n; k++ {
		brow := b.data[k*n : (k+1)*n]
		for i := 0; i < n; i++ {
			aik := a.data[i*n+k]
			mrow := mask[i*n : (i+1)*n]
			crow := c.data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				if mrow[j] {
					crow[j] += aik * brow[j]
				}
			}
		}
	}
}
