package atlas

import (
	"context"
	"testing"

	"repro/internal/experiment"
	"repro/internal/model"
	"repro/internal/partition"
)

// testAtlas builds a small atlas once for the package's tests.
func testAtlas(t testing.TB, scale int, prMax, rrMax float64, n int) *Atlas {
	t.Helper()
	g, err := NewGrid(scale, prMax, rrMax)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Build(context.Background(), BuildConfig{
		Algorithm: model.SCB,
		Topology:  model.FullyConnected,
		N:         n,
		Grid:      g,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBuildMatchesEvaluateCell(t *testing.T) {
	a := testAtlas(t, 2, 4, 3, 40)
	checked := 0
	for pi := 0; pi < a.grid.PrCells; pi++ {
		for ri := 0; ri < a.grid.RrCells; ri++ {
			c := Cell{Pi: pi, Ri: ri}
			rec, ok := a.At(c)
			if !a.grid.Valid(c) {
				if ok {
					t.Fatalf("invalid cell %+v has a record", c)
				}
				continue
			}
			if !ok {
				t.Fatalf("valid cell %+v not computed", c)
			}
			want, err := experiment.EvaluateCell(a.Algorithm(), a.Topology(), a.grid.Ratio(c), a.N())
			if err != nil {
				if rec.Feasible {
					t.Fatalf("cell %+v: atlas feasible but EvaluateCell failed: %v", c, err)
				}
				continue
			}
			if !rec.Feasible || rec.Shape != want.Winner || rec.VoC != want.VoC ||
				rec.Total != want.Breakdown.Total || rec.Comm != want.Breakdown.Comm {
				t.Fatalf("cell %+v: atlas %+v, live %+v", c, rec, want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no cells checked")
	}
}

func TestLookup(t *testing.T) {
	a := testAtlas(t, 2, 4, 3, 40)

	r := partition.MustRatio(2.5, 1.5, 1)
	rec, c, ok := a.Lookup(r)
	if !ok {
		t.Fatalf("Lookup(%v) missed", r)
	}
	if got := a.grid.Ratio(c); got != r {
		t.Fatalf("Lookup snapped %v to cell at %v", r, got)
	}
	if !rec.Feasible || rec.VoC <= 0 {
		t.Fatalf("Lookup(%v) returned implausible record %+v", r, rec)
	}

	for _, miss := range []partition.Ratio{
		{Pr: 2.51, Rr: 1.5, Sr: 1},  // off-lattice
		{Pr: 2.5, Rr: 1.5, Sr: 1.1}, // Sr not one
		{Pr: 9, Rr: 1, Sr: 1},       // beyond grid
	} {
		if _, _, ok := a.Lookup(miss); ok {
			t.Fatalf("Lookup(%+v) hit, want off-atlas", miss)
		}
	}
}

func TestBuildValidatesConfig(t *testing.T) {
	g, err := NewGrid(1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(context.Background(), BuildConfig{N: 3, Grid: g}); err == nil {
		t.Fatal("Build accepted n=3")
	}
	if _, err := Build(context.Background(), BuildConfig{N: 40}); err == nil {
		t.Fatal("Build accepted zero grid")
	}
}

func TestBuildCancellation(t *testing.T) {
	g, err := NewGrid(100, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Build(ctx, BuildConfig{
		Algorithm: model.SCB, Topology: model.FullyConnected, N: 40, Grid: g,
	}); err == nil {
		t.Fatal("Build ignored cancelled context")
	}
}

func TestWinnerCountsSumToValidFeasibleCells(t *testing.T) {
	a := testAtlas(t, 2, 4, 3, 40)
	sum := 0
	for _, n := range a.WinnerCounts() {
		sum += n
	}
	feasible := 0
	for i, rec := range a.recs {
		if a.valid[i] && rec.Feasible {
			feasible++
		}
	}
	if sum != feasible {
		t.Fatalf("winner counts sum to %d, want %d feasible cells", sum, feasible)
	}
	if feasible == 0 {
		t.Fatal("atlas has no feasible cells")
	}
}

// BenchmarkLookup certifies the acceptance criterion that the atlas-hit
// path allocates nothing: a snap, an index, and a record copy.
func BenchmarkLookup(b *testing.B) {
	a := testAtlas(b, 10, 4, 3, 40)
	ratios := []partition.Ratio{
		partition.MustRatio(2.5, 1.5, 1),
		partition.MustRatio(1, 1, 1),
		partition.MustRatio(3.7, 2.2, 1),
		partition.MustRatio(4, 3, 1),
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		rec, _, ok := a.Lookup(ratios[i%len(ratios)])
		if !ok {
			b.Fatal("lookup missed")
		}
		sink += rec.VoC
	}
	_ = sink
}

func TestLookupZeroAllocs(t *testing.T) {
	a := testAtlas(t, 10, 4, 3, 40)
	r := partition.MustRatio(2.5, 1.5, 1)
	allocs := testing.AllocsPerRun(1000, func() {
		if _, _, ok := a.Lookup(r); !ok {
			t.Fatal("lookup missed")
		}
	})
	if allocs != 0 {
		t.Fatalf("Lookup allocates %v objects per call, want 0", allocs)
	}
}
