package atlas

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	a := testAtlas(t, 2, 4, 3, 40)
	data := a.Encode()
	back, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if back.alg != a.alg || back.topo != a.topo || back.n != a.n || back.grid != a.grid {
		t.Fatalf("header round-trip: got (%v, %v, n=%d, %+v)", back.alg, back.topo, back.n, back.grid)
	}
	if !reflect.DeepEqual(back.recs, a.recs) || !reflect.DeepEqual(back.valid, a.valid) {
		t.Fatal("records changed across encode/decode")
	}
}

func TestSnapshotWriteLoad(t *testing.T) {
	a := testAtlas(t, 2, 4, 3, 40)
	path := filepath.Join(t.TempDir(), "test.atlas")
	if err := a.Write(path); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("tempfile left behind after Write")
	}
	back, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !reflect.DeepEqual(back.recs, a.recs) {
		t.Fatal("records changed across write/load")
	}
}

// reEncode recomputes both checksums after a deliberate header edit so the
// test exercises the named validation, not just the CRC.
func reEncode(data []byte) {
	binary.LittleEndian.PutUint32(data[40:], crc32.ChecksumIEEE(data[headerSize:]))
	binary.LittleEndian.PutUint32(data[44:], crc32.ChecksumIEEE(data[0:44]))
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	a := testAtlas(t, 2, 4, 3, 40)
	pristine := a.Encode()

	cases := []struct {
		name    string
		mutate  func(data []byte) []byte
		wantSub string
	}{
		{"bad magic", func(d []byte) []byte { d[0] = 'X'; return d }, "magic"},
		{"short file", func(d []byte) []byte { return d[:headerSize-1] }, "magic"},
		{"future version", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[8:], 99)
			reEncode(d)
			return d
		}, "version"},
		{"flipped header bit", func(d []byte) []byte { d[16] ^= 1; return d }, "header checksum"},
		{"flipped payload bit", func(d []byte) []byte { d[headerSize+5] ^= 1; return d }, "payload checksum"},
		{"truncated payload", func(d []byte) []byte { return d[:len(d)-recordStride] }, "truncated"},
		{"alien stride", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[32:], 64)
			reEncode(d)
			return d
		}, "stride"},
		{"count disagrees with grid", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[36:], 1)
			reEncode(d)
			return d
		}, "disagrees"},
		{"n out of range", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[16:], 2)
			reEncode(d)
			return d
		}, "out of range"},
		{"unknown shape byte", func(d []byte) []byte {
			// Find a feasible record and poison its shape.
			for off := headerSize; off < len(d); off += recordStride {
				if d[off+1]&flagFeasible != 0 {
					d[off] = 200
					break
				}
			}
			reEncode(d)
			return d
		}, "unknown shape"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := append([]byte(nil), pristine...)
			data = tc.mutate(data)
			_, err := Decode(data)
			if err == nil {
				t.Fatal("Decode accepted corrupted snapshot")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}

	// The pristine copy must still decode — proves the mutations above were
	// what tripped the checks.
	if _, err := Decode(pristine); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.atlas")); err == nil {
		t.Fatal("Load invented an atlas from a missing file")
	}
}
