package atlas

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestDumpGolden pins the dump format (header fields, winner counts, phase
// diagram) against a checked-in golden file. Run with -update to accept an
// intentional format change.
func TestDumpGolden(t *testing.T) {
	a := testAtlas(t, 2, 4, 3, 40)
	var buf bytes.Buffer
	if err := a.Dump(&buf); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	golden := filepath.Join("testdata", "dump_scb_full_n40.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("dump diverged from golden file %s:\n--- got ---\n%s\n--- want ---\n%s", golden, buf.Bytes(), want)
	}
}

// TestSpotCheck is the acceptance-criterion run: ≥ 200 randomly chosen
// atlas cells re-derived through the live search path must be
// bit-identical (shape, VoC, cost, full serialised plan) to the baked
// answers.
func TestSpotCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("spot-check re-runs live search per cell")
	}
	a := testAtlas(t, 10, 4, 2, 40) // 31x11 lattice, 286 valid cells
	if a.ValidCells() < 200 {
		t.Fatalf("test atlas has only %d valid cells, need ≥ 200 for the acceptance run", a.ValidCells())
	}
	mismatches, err := a.SpotCheck(context.Background(), 200, 1)
	if err != nil {
		t.Fatalf("SpotCheck: %v", err)
	}
	for _, m := range mismatches {
		t.Errorf("mismatch: %v", m)
	}
}

func TestSpotCheckReproducible(t *testing.T) {
	a := testAtlas(t, 2, 3, 2, 40)
	ctx := context.Background()
	m1, err := a.SpotCheck(ctx, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := a.SpotCheck(ctx, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(m1) != len(m2) {
		t.Fatalf("same seed, different results: %v vs %v", m1, m2)
	}
}

func TestSpotCheckCancellation(t *testing.T) {
	a := testAtlas(t, 2, 3, 2, 40)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.SpotCheck(ctx, 0, 1); err == nil {
		t.Fatal("SpotCheck ignored cancelled context")
	}
}
