package atlas

import (
	"math"
	"testing"

	"repro/internal/partition"
)

func TestNewGridValidation(t *testing.T) {
	cases := []struct {
		name         string
		scale        int
		prMax, rrMax float64
		wantErr      bool
		wantPr       int
		wantRr       int
	}{
		{name: "unit grid", scale: 1, prMax: 1, rrMax: 1, wantPr: 1, wantRr: 1},
		{name: "coarse", scale: 1, prMax: 10, rrMax: 5, wantPr: 10, wantRr: 5},
		{name: "tenths", scale: 10, prMax: 3, rrMax: 2, wantPr: 21, wantRr: 11},
		{name: "non-integral max keeps covered cells", scale: 2, prMax: 2.5, rrMax: 1.5, wantPr: 4, wantRr: 2},
		{name: "max just below a step", scale: 10, prMax: 1.99, rrMax: 1, wantPr: 10, wantRr: 1},
		{name: "zero scale", scale: 0, prMax: 2, rrMax: 2, wantErr: true},
		{name: "scale too fine", scale: 1001, prMax: 2, rrMax: 2, wantErr: true},
		{name: "max below one", scale: 10, prMax: 0.5, rrMax: 0.5, wantErr: true},
		{name: "rr above pr", scale: 10, prMax: 2, rrMax: 3, wantErr: true},
		{name: "too many cells", scale: 1000, prMax: 1000, rrMax: 1000, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := NewGrid(tc.scale, tc.prMax, tc.rrMax)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("NewGrid(%d, %g, %g) = %+v, want error", tc.scale, tc.prMax, tc.rrMax, g)
				}
				return
			}
			if err != nil {
				t.Fatalf("NewGrid(%d, %g, %g): %v", tc.scale, tc.prMax, tc.rrMax, err)
			}
			if g.PrCells != tc.wantPr || g.RrCells != tc.wantRr {
				t.Fatalf("grid %dx%d, want %dx%d", g.PrCells, g.RrCells, tc.wantPr, tc.wantRr)
			}
		})
	}
}

func TestGridIndexCellInverse(t *testing.T) {
	g, err := NewGrid(10, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < g.Cells(); idx++ {
		if got := g.Index(g.Cell(idx)); got != idx {
			t.Fatalf("Index(Cell(%d)) = %d", idx, got)
		}
	}
}

// TestSnapRoundTrip is the core quantization-unification property: every
// cell's exact ratio must snap back to the same cell, and — crucially for
// the serving tier — a ratio that travelled the wire (rendered to its
// decimal string and re-parsed, which is what the cache key and plan
// verification see) must still snap to the same cell with bit-identical
// coordinates.
func TestSnapRoundTrip(t *testing.T) {
	for _, scale := range []int{1, 3, 10, 100, 1000} {
		g, err := NewGrid(scale, 4, 3)
		if err != nil {
			t.Fatal(err)
		}
		for pi := 0; pi < g.PrCells; pi++ {
			for ri := 0; ri < g.RrCells; ri++ {
				c := Cell{Pi: pi, Ri: ri}
				if !g.Valid(c) {
					continue
				}
				r := g.Ratio(c)
				got, ok := g.Snap(r)
				if !ok || got != c {
					t.Fatalf("scale %d: Snap(Ratio(%+v)) = %+v, %v", scale, c, got, ok)
				}
				parsed, err := partition.ParseRatio(r.String())
				if err != nil {
					t.Fatalf("scale %d cell %+v: ParseRatio(%q): %v", scale, c, r.String(), err)
				}
				if parsed != r {
					t.Fatalf("scale %d cell %+v: wire round-trip changed ratio: %v -> %v", scale, c, r, parsed)
				}
				got, ok = g.Snap(parsed)
				if !ok || got != c {
					t.Fatalf("scale %d: Snap(parsed %q) = %+v, %v, want %+v", scale, r.String(), got, ok, c)
				}
			}
		}
	}
}

func TestSnapRejectsOffLattice(t *testing.T) {
	g, err := NewGrid(10, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		r    partition.Ratio
	}{
		{"Sr not one", partition.Ratio{Pr: 2, Rr: 1.5, Sr: 2}},
		{"between cells", partition.Ratio{Pr: 2.05, Rr: 1.5, Sr: 1}},
		{"near-miss below cell", partition.Ratio{Pr: 2.0999999, Rr: 1.5, Sr: 1}},
		{"Pr beyond grid", partition.Ratio{Pr: 3.1, Rr: 1.5, Sr: 1}},
		{"Rr beyond grid", partition.Ratio{Pr: 3, Rr: 2.1, Sr: 1}},
		{"ordering violated", partition.Ratio{Pr: 1.2, Rr: 1.5, Sr: 1}},
		{"below one", partition.Ratio{Pr: 0.9, Rr: 0.9, Sr: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if c, ok := g.Snap(tc.r); ok {
				t.Fatalf("Snap(%+v) snapped to %+v, want off-atlas", tc.r, c)
			}
		})
	}
}

func TestGridValid(t *testing.T) {
	g, err := NewGrid(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 3x3 lattice; only the lower triangle (Pi >= Ri) is valid.
	wantValid := 0
	for pi := 0; pi < g.PrCells; pi++ {
		for ri := 0; ri < g.RrCells; ri++ {
			c := Cell{Pi: pi, Ri: ri}
			if g.Valid(c) {
				wantValid++
				if pi < ri {
					t.Fatalf("cell %+v valid despite Pr < Rr", c)
				}
			}
		}
	}
	if wantValid != 6 {
		t.Fatalf("valid cells = %d, want 6 (lower triangle of 3x3)", wantValid)
	}
	if g.Valid(Cell{Pi: -1, Ri: 0}) || g.Valid(Cell{Pi: 0, Ri: -1}) || g.Valid(Cell{Pi: g.PrCells, Ri: 0}) {
		t.Fatal("out-of-bounds cell reported valid")
	}
}

// TestSnapAgreesWithRatioKey pins the unification contract between the
// two quantization consumers: the serve cache keys on Ratio.Key while
// Snap compares with Ratio.SameScenario, and for any candidate ratio the
// two must name the same lattice cell — Snap hits exactly when some
// valid cell's canonical key equals the ratio's key. A gap in either
// direction would let a scenario atlas-miss but cache-hit (or the
// reverse) through rounding drift.
func TestSnapAgreesWithRatioKey(t *testing.T) {
	g, err := NewGrid(10, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	var cells []Cell
	for pi := 0; pi < g.PrCells; pi++ {
		for ri := 0; ri < g.RrCells; ri++ {
			if c := (Cell{Pi: pi, Ri: ri}); g.Valid(c) {
				cells = append(cells, c)
			}
		}
	}
	keyToCell := make(map[string]Cell)
	for _, c := range cells {
		keyToCell[g.Ratio(c).Key()] = c
	}

	var candidates []partition.Ratio
	for _, c := range cells {
		r := g.Ratio(c)
		candidates = append(candidates,
			r, // exactly on-lattice
			partition.Ratio{Pr: r.Pr + g.Step()/2, Rr: r.Rr, Sr: 1},         // between cells
			partition.Ratio{Pr: r.Pr, Rr: r.Rr, Sr: 1 + 1e-9},               // Sr off one
			partition.Ratio{Pr: math.Nextafter(r.Pr, 100), Rr: r.Rr, Sr: 1}, // one ULP off
		)
		// The wire form: what the cache key and batch items carry.
		parsed, err := partition.ParseRatio(r.Key())
		if err != nil {
			t.Fatalf("ParseRatio(%q): %v", r.Key(), err)
		}
		candidates = append(candidates, parsed)
	}

	for _, r := range candidates {
		cell, snapped := g.Snap(r)
		keyCell, keyed := keyToCell[r.Key()]
		if snapped != keyed {
			t.Fatalf("quantization drift for %v: Snap hit=%v but key %q hit=%v",
				r, snapped, r.Key(), keyed)
		}
		if snapped && cell != keyCell {
			t.Fatalf("quantization drift for %v: Snap cell %+v, key cell %+v",
				r, cell, keyCell)
		}
	}
}
