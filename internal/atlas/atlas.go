package atlas

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/experiment"
	"repro/internal/model"
	"repro/internal/partition"
)

// Record is one cell's baked decision. The struct is plain scalar data
// returned by value, so the lookup path allocates nothing.
type Record struct {
	// Shape is the winning candidate (meaningful when Feasible).
	Shape partition.Shape
	// Feasible is false when no candidate shape could be built for the
	// cell's ratio (does not occur for the canonical six, but the format
	// does not assume that).
	Feasible bool
	// VoC is the winner's communication volume in elements.
	VoC int64
	// Total and Comm are the winner's modelled execution and
	// communication time in seconds.
	Total float64
	Comm  float64
}

// Atlas is an immutable winner-shape snapshot over a quantization grid.
// Load one at startup and share it freely: all methods are read-only.
type Atlas struct {
	alg  model.Algorithm
	topo model.Topology
	n    int
	grid Grid
	// recs is indexed by Grid.Index; cells with Pr < Rr hold zero records
	// flagged invalid.
	recs []Record
	// valid marks computed cells (parallel to recs; separate so Record
	// stays pure payload).
	valid []bool
}

// Algorithm returns the MMM algorithm the sweep optimised for.
func (a *Atlas) Algorithm() model.Algorithm { return a.alg }

// Topology returns the network topology of the sweep.
func (a *Atlas) Topology() model.Topology { return a.topo }

// N returns the matrix dimension the plans were sized for.
func (a *Atlas) N() int { return a.n }

// Grid returns the quantization lattice.
func (a *Atlas) Grid() Grid { return a.grid }

// Cells returns the total lattice size, invalid cells included.
func (a *Atlas) Cells() int { return len(a.recs) }

// ValidCells returns the number of computed (Pr ≥ Rr) cells.
func (a *Atlas) ValidCells() int {
	n := 0
	for _, v := range a.valid {
		if v {
			n++
		}
	}
	return n
}

// Lookup returns the baked record for a ratio, or ok=false when the
// ratio is off-atlas. It performs no allocation: a quantization snap,
// one slice index, and a by-value record copy.
func (a *Atlas) Lookup(r partition.Ratio) (Record, Cell, bool) {
	c, ok := a.grid.Snap(r)
	if !ok {
		return Record{}, Cell{}, false
	}
	idx := a.grid.Index(c)
	if !a.valid[idx] {
		return Record{}, Cell{}, false
	}
	return a.recs[idx], c, true
}

// At returns the record at a cell (for iteration by dump/spot-check
// tooling); ok is false for invalid or uncomputed cells.
func (a *Atlas) At(c Cell) (Record, bool) {
	if !a.grid.Valid(c) {
		return Record{}, false
	}
	idx := a.grid.Index(c)
	return a.recs[idx], a.valid[idx]
}

// WinnerCounts tallies how many valid cells each shape wins.
func (a *Atlas) WinnerCounts() map[partition.Shape]int {
	out := make(map[partition.Shape]int)
	for i, rec := range a.recs {
		if a.valid[i] && rec.Feasible {
			out[rec.Shape]++
		}
	}
	return out
}

// BuildConfig parameterises a sweep.
type BuildConfig struct {
	Algorithm model.Algorithm
	Topology  model.Topology
	// N is the matrix dimension the baked plans answer for.
	N    int
	Grid Grid
	// Workers bounds the sweep parallelism (default GOMAXPROCS).
	Workers int
	// Progress, when non-nil, receives (done, total) after each completed
	// grid row.
	Progress func(done, total int)
}

// Build sweeps the grid and bakes the winner decision per cell, using the
// same per-cell kernel as the winner map (experiment.EvaluateCell), which
// in turn mirrors the online Optimal comparison — so a baked answer is
// bit-identical to what a live plan request would compute. Rows run in
// parallel; ctx cancels between rows.
func Build(ctx context.Context, cfg BuildConfig) (*Atlas, error) {
	if cfg.N < 4 {
		return nil, fmt.Errorf("atlas: n must be ≥ 4, got %d", cfg.N)
	}
	if cfg.Grid.Scale < 1 || cfg.Grid.PrCells < 1 || cfg.Grid.RrCells < 1 {
		return nil, fmt.Errorf("atlas: grid is empty or unscaled (use NewGrid)")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	a := &Atlas{
		alg:   cfg.Algorithm,
		topo:  cfg.Topology,
		n:     cfg.N,
		grid:  cfg.Grid,
		recs:  make([]Record, cfg.Grid.Cells()),
		valid: make([]bool, cfg.Grid.Cells()),
	}

	rows := make(chan int)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pi := range rows {
				a.buildRow(pi)
				mu.Lock()
				done++
				if cfg.Progress != nil {
					cfg.Progress(done, cfg.Grid.PrCells)
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for pi := 0; pi < cfg.Grid.PrCells; pi++ {
		select {
		case <-ctx.Done():
			break feed
		case rows <- pi:
		}
	}
	close(rows)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("atlas: sweep interrupted: %w", err)
	}
	return a, nil
}

// buildRow fills every valid cell of one Pr row. A cell where no
// candidate is feasible is recorded as such, not an error: the snapshot
// must describe the whole grid honestly.
func (a *Atlas) buildRow(pi int) {
	for ri := 0; ri < a.grid.RrCells; ri++ {
		c := Cell{Pi: pi, Ri: ri}
		if !a.grid.Valid(c) {
			continue
		}
		idx := a.grid.Index(c)
		a.valid[idx] = true
		res, err := experiment.EvaluateCell(a.alg, a.topo, a.grid.Ratio(c), a.n)
		if err != nil {
			a.recs[idx] = Record{}
			continue
		}
		a.recs[idx] = Record{
			Shape:    res.Winner,
			Feasible: true,
			VoC:      res.VoC,
			Total:    res.Breakdown.Total,
			Comm:     res.Breakdown.Comm,
		}
	}
}
