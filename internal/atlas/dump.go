package atlas

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"

	heteropart "repro"
	"repro/internal/experiment"
	"repro/internal/model"
	"repro/internal/partition"
)

// Dump writes a human-readable description of the atlas: the snapshot
// header fields, grid resolution, per-shape winner counts, and the
// winner-map phase diagram (Pr down, Rr right, one glyph per cell).
func (a *Atlas) Dump(w io.Writer) error {
	g := a.grid
	if _, err := fmt.Fprintf(w, "shape atlas v%d: %v, %v topology, n=%d\n",
		snapshotVersion, a.alg, a.topo, a.n); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "grid: %d x %d cells (Pr 1..%s, Rr 1..%s, step 1/%d), %d valid\n",
		g.PrCells, g.RrCells,
		trimFloat(g.coord(g.PrCells-1)), trimFloat(g.coord(g.RrCells-1)),
		g.Scale, a.ValidCells()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "snapshot: %d bytes, payload crc32 %08x\n",
		headerSize+len(a.recs)*recordStride, a.PayloadCRC()); err != nil {
		return err
	}

	counts := a.WinnerCounts()
	shapes := make([]partition.Shape, 0, len(counts))
	for s := range counts {
		shapes = append(shapes, s)
	}
	sort.Slice(shapes, func(i, j int) bool { return counts[shapes[i]] > counts[shapes[j]] })
	if _, err := fmt.Fprintf(w, "winners:\n"); err != nil {
		return err
	}
	for _, s := range shapes {
		if _, err := fmt.Fprintf(w, "  %-22v %6d cells (%.1f%%)\n",
			s, counts[s], 100*float64(counts[s])/float64(a.ValidCells())); err != nil {
			return err
		}
	}

	if _, err := fmt.Fprintf(w, "phase diagram (rows Pr top-down, cols Rr left-right; %s; '.' = Pr < Rr, '!' = infeasible):\n",
		"C=Square-Corner r=Rectangle-Corner Q=Square-Rectangle B=Block-Rectangle L=L-Rectangle T=Traditional"); err != nil {
		return err
	}
	line := make([]byte, 0, g.RrCells)
	for pi := 0; pi < g.PrCells; pi++ {
		line = line[:0]
		for ri := 0; ri < g.RrCells; ri++ {
			c := Cell{Pi: pi, Ri: ri}
			rec, ok := a.At(c)
			switch {
			case !ok:
				line = append(line, '.')
			case !rec.Feasible:
				line = append(line, '!')
			default:
				line = append(line, experiment.ShapeGlyph(rec.Shape))
			}
		}
		if _, err := fmt.Fprintf(w, "Pr=%-6s %s\n", trimFloat(g.coord(pi)), line); err != nil {
			return err
		}
	}
	return nil
}

// trimFloat renders a lattice coordinate compactly ("1.2", "10").
func trimFloat(v float64) string { return fmt.Sprintf("%g", v) }

// Mismatch is one spot-check divergence between a baked record and the
// live optimal-search answer for the same scenario.
type Mismatch struct {
	Cell  Cell
	Ratio partition.Ratio
	// Reason describes the first observed divergence.
	Reason string
}

func (m Mismatch) String() string {
	return fmt.Sprintf("cell (Pi=%d,Ri=%d) ratio %v: %s", m.Cell.Pi, m.Cell.Ri, m.Ratio, m.Reason)
}

// SpotCheck re-derives `cells` randomly chosen valid cells through the
// live search path (heteropart.NewPlan — the exact code serving an
// off-atlas request) and compares shape, VoC, modelled cost, and the full
// serialised plan byte-for-byte against what the atlas would serve
// (heteropart.NewPlanForShape on the baked winner). It returns every
// divergence found; an empty slice certifies the sample bit-identical.
// The seed makes a run reproducible; ctx cancels between cells.
func (a *Atlas) SpotCheck(ctx context.Context, cells int, seed int64) ([]Mismatch, error) {
	valid := make([]int, 0, len(a.recs))
	for i, v := range a.valid {
		if v {
			valid = append(valid, i)
		}
	}
	if len(valid) == 0 {
		return nil, fmt.Errorf("atlas: no valid cells to spot-check")
	}
	if cells <= 0 || cells > len(valid) {
		cells = len(valid)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(valid), func(i, j int) { valid[i], valid[j] = valid[j], valid[i] })

	var out []Mismatch
	for _, idx := range valid[:cells] {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("atlas: spot-check interrupted: %w", err)
		}
		c := a.grid.Cell(idx)
		ratio := a.grid.Ratio(c)
		rec := a.recs[idx]
		if mm := a.checkCell(c, ratio, rec); mm != nil {
			out = append(out, *mm)
		}
	}
	return out, nil
}

// checkCell compares one baked record against the live search answer.
func (a *Atlas) checkCell(c Cell, ratio partition.Ratio, rec Record) *Mismatch {
	m := model.DefaultMachine(ratio)
	m.Topology = a.topo
	live, err := heteropart.NewPlan(a.alg, m, a.n)
	if err != nil {
		if !rec.Feasible {
			return nil // both sides agree: no shape fits
		}
		return &Mismatch{Cell: c, Ratio: ratio,
			Reason: fmt.Sprintf("atlas says %v wins but live search failed: %v", rec.Shape, err)}
	}
	if !rec.Feasible {
		return &Mismatch{Cell: c, Ratio: ratio,
			Reason: fmt.Sprintf("atlas says infeasible but live search picked %s", live.Shape)}
	}
	if got := rec.Shape.String(); got != live.Shape {
		return &Mismatch{Cell: c, Ratio: ratio,
			Reason: fmt.Sprintf("winner differs: atlas %s, live %s", got, live.Shape)}
	}
	if rec.VoC != live.VoC {
		return &Mismatch{Cell: c, Ratio: ratio,
			Reason: fmt.Sprintf("VoC differs: atlas %d, live %d", rec.VoC, live.VoC)}
	}
	if rec.Total != live.Expected.Total || rec.Comm != live.Expected.Comm {
		return &Mismatch{Cell: c, Ratio: ratio,
			Reason: fmt.Sprintf("modelled cost differs: atlas (%v, %v), live (%v, %v)",
				rec.Total, rec.Comm, live.Expected.Total, live.Expected.Comm)}
	}
	// Byte-compare the full plans: this is the strongest guarantee — the
	// atlas-served response is literally the search-served response.
	baked, err := heteropart.NewPlanForShape(a.alg, m, a.n, rec.Shape)
	if err != nil {
		return &Mismatch{Cell: c, Ratio: ratio,
			Reason: fmt.Sprintf("baked winner %v no longer buildable: %v", rec.Shape, err)}
	}
	var bakedJSON, liveJSON bytes.Buffer
	if err := baked.WriteJSON(&bakedJSON); err != nil {
		return &Mismatch{Cell: c, Ratio: ratio, Reason: fmt.Sprintf("encode baked plan: %v", err)}
	}
	if err := live.WriteJSON(&liveJSON); err != nil {
		return &Mismatch{Cell: c, Ratio: ratio, Reason: fmt.Sprintf("encode live plan: %v", err)}
	}
	if !bytes.Equal(bakedJSON.Bytes(), liveJSON.Bytes()) {
		return &Mismatch{Cell: c, Ratio: ratio, Reason: "serialised plans are not byte-identical"}
	}
	return nil
}
