// Package atlas implements the precomputed shape atlas: an offline sweep
// over quantized ratio space that bakes the optimal-candidate decision —
// winner shape, communication volume, modelled cost — into an immutable,
// versioned, checksummed flat snapshot, loaded once at startup and shared
// read-only across goroutines. The serving tier (internal/serve) answers
// on-atlas plan requests from it in O(1) without touching the search
// engine, admission gate, breaker, or singleflight.
//
// The paper's central result makes this sound: for three heterogeneous
// processors the optimal partition shape is a pure function of the speed
// ratio (the Section IX winner map is finite and precomputable), so a
// quantized grid over (Pr, Rr) with Sr = 1 covers the whole decision
// space. Off-atlas ratios fall through to the online search path.
package atlas

import (
	"fmt"
	"math"

	"repro/internal/partition"
)

// Grid is the quantization lattice over the (Pr, Rr) ratio plane with
// Sr = 1: cell (pi, ri) sits at Pr = (Scale+pi)/Scale, Rr = (Scale+ri)/Scale.
//
// Coordinates are reconstructed by dividing two exact small integers, so
// a cell's ratio is bit-identical to what strconv parses from its decimal
// rendering ("1.2" for Scale=10, pi=2): both are the correctly-rounded
// nearest float64. That exactness is the whole point of the type — it is
// the one shared quantization helper for the atlas grid AND the serving
// tier's cache keys, so a ratio can never atlas-miss but cache-hit (or
// vice versa) from rounding drift between two hand-rolled quantizers.
type Grid struct {
	// Scale is the number of cells per unit of speed ratio (the step is
	// 1/Scale).
	Scale int
	// PrCells and RrCells count the lattice points along each axis,
	// starting at Pr = Rr = 1.
	PrCells int
	RrCells int
}

// Cell is one lattice point: Pi, Ri index the Pr and Rr axes from 0.
type Cell struct {
	Pi, Ri int
}

// NewGrid builds the lattice covering Pr ∈ [1, prMax], Rr ∈ [1, rrMax]
// at scale cells per unit.
func NewGrid(scale int, prMax, rrMax float64) (Grid, error) {
	if scale < 1 || scale > 1000 {
		return Grid{}, fmt.Errorf("atlas: scale must be in [1, 1000], got %d", scale)
	}
	if prMax < 1 || rrMax < 1 {
		return Grid{}, fmt.Errorf("atlas: grid maxima must be ≥ 1, got Pr≤%g Rr≤%g", prMax, rrMax)
	}
	if rrMax > prMax {
		return Grid{}, fmt.Errorf("atlas: RrMax %g exceeds PrMax %g (the ratio ordering Pr ≥ Rr makes those cells unreachable)", rrMax, prMax)
	}
	g := Grid{
		Scale:   scale,
		PrCells: int(math.Floor((prMax-1)*float64(scale)+1e-9)) + 1,
		RrCells: int(math.Floor((rrMax-1)*float64(scale)+1e-9)) + 1,
	}
	if g.Cells() > 16<<20 {
		return Grid{}, fmt.Errorf("atlas: grid of %d cells is unreasonably fine", g.Cells())
	}
	return g, nil
}

// Step returns the lattice spacing 1/Scale.
func (g Grid) Step() float64 { return 1 / float64(g.Scale) }

// Cells returns the total lattice size, invalid (Pr < Rr) cells included.
func (g Grid) Cells() int { return g.PrCells * g.RrCells }

// Valid reports whether c is inside the lattice and respects the ratio
// ordering Pr ≥ Rr.
func (g Grid) Valid(c Cell) bool {
	return c.Pi >= 0 && c.Pi < g.PrCells && c.Ri >= 0 && c.Ri < g.RrCells && c.Pi >= c.Ri
}

// Index returns c's row-major position, the snapshot record offset.
func (g Grid) Index(c Cell) int { return c.Pi*g.RrCells + c.Ri }

// Cell inverts Index.
func (g Grid) Cell(idx int) Cell { return Cell{Pi: idx / g.RrCells, Ri: idx % g.RrCells} }

// coord reconstructs a lattice coordinate. The division of two exact
// integers is correctly rounded, so the result is deterministic and equal
// to the decimal parse of the same value.
func (g Grid) coord(i int) float64 { return float64(g.Scale+i) / float64(g.Scale) }

// Ratio returns the exact ratio at cell c (Sr = 1).
func (g Grid) Ratio(c Cell) partition.Ratio {
	return partition.Ratio{Pr: g.coord(c.Pi), Rr: g.coord(c.Ri), Sr: 1}
}

// Snap maps a ratio onto its lattice cell. It succeeds only for ratios
// that are exactly the quantization identity of a cell — Sr exactly 1
// and both coordinates equal to a cell's reconstruction — because an
// approximate snap would let the serving tier answer a scenario with a
// plan computed for a slightly different one, which the client's
// response re-verification would (rightly) reject as corrupt.
// Near-misses are off-atlas by design. "Same scenario" here is
// partition.Ratio.SameScenario, the allocation-free twin of Ratio.Key —
// the identity the serve cache key embeds — so a ratio can never snap
// onto the atlas under one cache key and miss under another.
func (g Grid) Snap(r partition.Ratio) (Cell, bool) {
	c := Cell{
		Pi: int(math.Round((r.Pr - 1) * float64(g.Scale))),
		Ri: int(math.Round((r.Rr - 1) * float64(g.Scale))),
	}
	if !g.Valid(c) || !r.SameScenario(g.Ratio(c)) {
		return Cell{}, false
	}
	return c, true
}
