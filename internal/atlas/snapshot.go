package atlas

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"repro/internal/model"
	"repro/internal/partition"
)

// Snapshot format, version 1 (all integers little-endian):
//
//	header (64 bytes)
//	  [ 0: 8)  magic "HPATLAS\x01"
//	  [ 8:12)  format version (uint32, = 1)
//	  [12:13)  algorithm (uint8, model.Algorithm)
//	  [13:14)  topology  (uint8, model.Topology)
//	  [14:16)  reserved (zero)
//	  [16:20)  n         (uint32)
//	  [20:24)  scale     (uint32, cells per unit ratio)
//	  [24:28)  prCells   (uint32)
//	  [28:32)  rrCells   (uint32)
//	  [32:36)  record stride (uint32, = 32)
//	  [36:40)  record count  (uint32, = prCells·rrCells)
//	  [40:44)  payload CRC32 (IEEE, over all record bytes)
//	  [44:48)  header  CRC32 (IEEE, over bytes [0:44))
//	  [48:64)  reserved (zero)
//	records (count × stride bytes, row-major by (pi, ri))
//	  [ 0: 1)  shape (uint8)
//	  [ 1: 2)  flags (bit 0: cell valid/computed, bit 1: feasible)
//	  [ 2: 8)  reserved (zero)
//	  [ 8:16)  VoC (int64)
//	  [16:24)  winner modelled total seconds (float64 bits)
//	  [24:32)  winner modelled comm  seconds (float64 bits)
//
// The fixed stride keeps the lookup a pure index computation; the two
// checksums make a torn or bit-rotted snapshot fail loudly at load time
// instead of quietly serving wrong plans.
const (
	snapshotMagic   = "HPATLAS\x01"
	snapshotVersion = 1
	headerSize      = 64
	recordStride    = 32

	flagValid    = 1
	flagFeasible = 2
)

// Encode serialises the atlas to its snapshot bytes.
func (a *Atlas) Encode() []byte {
	buf := make([]byte, headerSize+len(a.recs)*recordStride)
	payload := buf[headerSize:]
	for i, rec := range a.recs {
		off := i * recordStride
		payload[off] = byte(rec.Shape)
		var flags byte
		if a.valid[i] {
			flags |= flagValid
		}
		if rec.Feasible {
			flags |= flagFeasible
		}
		payload[off+1] = flags
		binary.LittleEndian.PutUint64(payload[off+8:], uint64(rec.VoC))
		binary.LittleEndian.PutUint64(payload[off+16:], math.Float64bits(rec.Total))
		binary.LittleEndian.PutUint64(payload[off+24:], math.Float64bits(rec.Comm))
	}
	copy(buf[0:8], snapshotMagic)
	binary.LittleEndian.PutUint32(buf[8:], snapshotVersion)
	buf[12] = byte(a.alg)
	buf[13] = byte(a.topo)
	binary.LittleEndian.PutUint32(buf[16:], uint32(a.n))
	binary.LittleEndian.PutUint32(buf[20:], uint32(a.grid.Scale))
	binary.LittleEndian.PutUint32(buf[24:], uint32(a.grid.PrCells))
	binary.LittleEndian.PutUint32(buf[28:], uint32(a.grid.RrCells))
	binary.LittleEndian.PutUint32(buf[32:], recordStride)
	binary.LittleEndian.PutUint32(buf[36:], uint32(len(a.recs)))
	binary.LittleEndian.PutUint32(buf[40:], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(buf[44:], crc32.ChecksumIEEE(buf[0:44]))
	return buf
}

// PayloadCRC returns the snapshot's record checksum (for dump tooling).
func (a *Atlas) PayloadCRC() uint32 {
	return crc32.ChecksumIEEE(a.Encode()[headerSize:])
}

// Decode parses and verifies snapshot bytes.
func Decode(data []byte) (*Atlas, error) {
	if len(data) < headerSize || string(data[0:8]) != snapshotMagic {
		return nil, fmt.Errorf("atlas: not an atlas snapshot (bad magic)")
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != snapshotVersion {
		return nil, fmt.Errorf("atlas: snapshot version %d, this build reads %d", v, snapshotVersion)
	}
	if got, want := crc32.ChecksumIEEE(data[0:44]), binary.LittleEndian.Uint32(data[44:]); got != want {
		return nil, fmt.Errorf("atlas: header checksum mismatch (want %08x, got %08x)", want, got)
	}
	a := &Atlas{
		alg:  model.Algorithm(data[12]),
		topo: model.Topology(data[13]),
		n:    int(binary.LittleEndian.Uint32(data[16:])),
	}
	a.grid = Grid{
		Scale:   int(binary.LittleEndian.Uint32(data[20:])),
		PrCells: int(binary.LittleEndian.Uint32(data[24:])),
		RrCells: int(binary.LittleEndian.Uint32(data[28:])),
	}
	stride := binary.LittleEndian.Uint32(data[32:])
	count := int(binary.LittleEndian.Uint32(data[36:]))
	if stride != recordStride {
		return nil, fmt.Errorf("atlas: record stride %d, this build reads %d", stride, recordStride)
	}
	if a.grid.Scale < 1 || a.grid.PrCells < 1 || a.grid.RrCells < 1 || count != a.grid.Cells() {
		return nil, fmt.Errorf("atlas: header grid %dx%d (scale %d) disagrees with record count %d",
			a.grid.PrCells, a.grid.RrCells, a.grid.Scale, count)
	}
	if a.n < 4 {
		return nil, fmt.Errorf("atlas: header n=%d out of range", a.n)
	}
	payload := data[headerSize:]
	if len(payload) != count*recordStride {
		return nil, fmt.Errorf("atlas: snapshot truncated: %d payload bytes, want %d", len(payload), count*recordStride)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(data[40:]); got != want {
		return nil, fmt.Errorf("atlas: payload checksum mismatch (want %08x, got %08x)", want, got)
	}
	a.recs = make([]Record, count)
	a.valid = make([]bool, count)
	for i := range a.recs {
		off := i * recordStride
		flags := payload[off+1]
		a.valid[i] = flags&flagValid != 0
		a.recs[i] = Record{
			Shape:    partition.Shape(payload[off]),
			Feasible: flags&flagFeasible != 0,
			VoC:      int64(binary.LittleEndian.Uint64(payload[off+8:])),
			Total:    math.Float64frombits(binary.LittleEndian.Uint64(payload[off+16:])),
			Comm:     math.Float64frombits(binary.LittleEndian.Uint64(payload[off+24:])),
		}
		if a.valid[i] && a.recs[i].Feasible && int(payload[off]) >= partition.NumShapes {
			return nil, fmt.Errorf("atlas: record %d carries unknown shape %d", i, payload[off])
		}
	}
	return a, nil
}

// Write atomically persists the snapshot: built in a sibling tempfile and
// renamed over path, so a crash mid-write leaves either the old snapshot
// or the new one, never a torn file.
func (a *Atlas) Write(path string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, a.Encode(), 0o644); err != nil {
		return fmt.Errorf("atlas: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atlas: rename snapshot: %w", err)
	}
	return nil
}

// Load reads and verifies a snapshot file.
func Load(path string) (*Atlas, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	a, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("atlas: %s: %w", path, err)
	}
	return a, nil
}
