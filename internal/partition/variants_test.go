package partition

import (
	"errors"
	"testing"
)

func TestSquareCornerPositionInvariance(t *testing.T) {
	// §IX-A / Theorem 8.1: the corner S occupies does not change the
	// volume of communication.
	ratio := MustRatio(10, 1, 1)
	const n = 200
	var vocs []int64
	for _, c := range []Corner{BottomRight, TopLeft, TopRight} {
		g, err := BuildSquareCornerAt(n, ratio, c)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		counts := ratio.Counts(n)
		for _, p := range Procs {
			if g.Count(p) != counts[p] {
				t.Fatalf("%v: count(%v) = %d, want %d", c, p, g.Count(p), counts[p])
			}
		}
		vocs = append(vocs, g.VoC())
	}
	for i := 1; i < len(vocs); i++ {
		if vocs[i] != vocs[0] {
			t.Errorf("corner placement changed VoC: %v", vocs)
		}
	}
	// And it matches the default constructor.
	def, err := Build(SquareCorner, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	if def.VoC() != vocs[0] {
		t.Errorf("default SC VoC %d differs from variant %d", def.VoC(), vocs[0])
	}
}

func TestBuildSquareCornerAtErrors(t *testing.T) {
	if _, err := BuildSquareCornerAt(100, MustRatio(10, 1, 1), BottomLeft); !errors.Is(err, ErrInfeasible) {
		t.Error("S on R's corner must be rejected")
	}
	if _, err := BuildSquareCornerAt(100, MustRatio(2, 2, 1), TopRight); !errors.Is(err, ErrInfeasible) {
		t.Error("infeasible ratio must be rejected")
	}
	if _, err := BuildSquareCornerAt(100, Ratio{}, TopRight); err == nil {
		t.Error("invalid ratio must be rejected")
	}
}

func TestRectangleCornerSplitOptimal(t *testing.T) {
	// The §IX-B.1 perimeter minimisation must pick a split whose actual
	// grid VoC is (near-)minimal over the whole sweep.
	ratio := MustRatio(2, 2, 1)
	const n = 150
	bestW, err := OptimalRectangleCornerSplit(n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	chosen, err := BuildRectangleCornerSplit(n, ratio, bestW)
	if err != nil {
		t.Fatal(err)
	}
	// Sweep only proper Type 1 splits: §IX-A requires both rectangles
	// strictly shorter than N in both dimensions (a full-height rectangle
	// is Type 3's Square-Rectangle family, not a corner rectangle, and
	// legitimately beats the corner optimum at this ratio).
	counts := ratio.Counts(n)
	minVoC := int64(1) << 62
	for w := 1; w < n; w++ {
		hR := (counts[R] + w - 1) / w
		hS := (counts[S] + (n - w) - 1) / (n - w)
		if hR >= n || hS >= n {
			continue
		}
		g, err := BuildRectangleCornerSplit(n, ratio, w)
		if err != nil {
			continue
		}
		if g.VoC() < minVoC {
			minVoC = g.VoC()
		}
	}
	// Integral raggedness allows a line or two of slack between the
	// continuous optimum and the best integer split.
	if chosen.VoC() > minVoC+int64(2*n) {
		t.Errorf("chosen split %d gives VoC %d, sweep minimum is %d", bestW, chosen.VoC(), minVoC)
	}
	// And Build's Rectangle-Corner equals the chosen-split construction.
	def, err := Build(RectangleCorner, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	if def.VoC() != chosen.VoC() {
		t.Errorf("Build VoC %d != chosen-split VoC %d", def.VoC(), chosen.VoC())
	}
}

func TestBuildRectangleCornerSplitErrors(t *testing.T) {
	ratio := MustRatio(2, 2, 1)
	if _, err := BuildRectangleCornerSplit(100, ratio, 0); err == nil {
		t.Error("split 0 must be rejected")
	}
	if _, err := BuildRectangleCornerSplit(100, ratio, 100); err == nil {
		t.Error("split n must be rejected")
	}
	if _, err := BuildRectangleCornerSplit(100, ratio, 1); !errors.Is(err, ErrInfeasible) {
		t.Error("split too narrow for the counts must be infeasible")
	}
	if _, err := BuildRectangleCornerSplit(100, Ratio{}, 50); err == nil {
		t.Error("invalid ratio must be rejected")
	}
}

func TestCornerString(t *testing.T) {
	want := map[Corner]string{
		BottomLeft: "bottom-left", BottomRight: "bottom-right",
		TopLeft: "top-left", TopRight: "top-right",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
}
