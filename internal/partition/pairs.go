package partition

// This file breaks Eq 1's Volume of Communication down by ordered
// processor pair, the granularity a per-link cost model needs. A cell of
// p in row i is sent once to every *other* processor present in row i
// (its share of the A pivot row) and once to every other processor in its
// column (B pivot column); attributing each of those unicast sends to its
// receiver gives the directed volume
//
//	V[p][q] = Σ_i cnt_p(i)·[cnt_q(i) > 0] + Σ_j cnt_p(j)·[cnt_q(j) > 0]   (p ≠ q)
//
// with the row/column sums running over lines where both p and q appear.
// Row-summing recovers the per-processor send volumes (Σ_q V[p][q] =
// Sends[p]) and the grand total recovers VoC exactly — both are integer
// identities, not approximations, which the tests assert.

// PairVolumes returns the directed communication volumes V[from][to] in
// elements. The diagonal is zero. Cost is O(N·NumProcs²) using the grid's
// per-line occupancy counters — no cell scan.
func (g *Grid) PairVolumes() [NumProcs][NumProcs]int64 {
	var v [NumProcs][NumProcs]int64
	n := g.n
	for line := 0; line < n; line++ {
		rowBase := line * NumProcs
		for p := 0; p < NumProcs; p++ {
			if rc := g.rowCnt[rowBase+p]; rc > 0 {
				for q := 0; q < NumProcs; q++ {
					if q != p && g.rowCnt[rowBase+q] > 0 {
						v[p][q] += int64(rc)
					}
				}
			}
			if cc := g.colCnt[rowBase+p]; cc > 0 {
				for q := 0; q < NumProcs; q++ {
					if q != p && g.colCnt[rowBase+q] > 0 {
						v[p][q] += int64(cc)
					}
				}
			}
		}
	}
	return v
}

// Weights assigns a relative cost to each ordered processor pair, the
// partition-layer shadow of a per-link β matrix (normalised so the uniform
// network is all ones). The diagonal is ignored.
type Weights [NumProcs][NumProcs]float64

// UniformWeights is the weight matrix of the uniform network: every
// directed link costs 1, so WeightedVoC equals float64(VoC) exactly.
func UniformWeights() Weights {
	var w Weights
	for p := 0; p < NumProcs; p++ {
		for q := 0; q < NumProcs; q++ {
			if p != q {
				w[p][q] = 1
			}
		}
	}
	return w
}

// Uniform reports whether every off-diagonal weight equals 1.
func (w Weights) Uniform() bool {
	for p := 0; p < NumProcs; p++ {
		for q := 0; q < NumProcs; q++ {
			if p != q && w[p][q] != 1 {
				return false
			}
		}
	}
	return true
}

// WeightedVoC returns Σ_{p≠q} w[p][q]·V[p][q] — the cost-weighted Volume
// of Communication the push engine's acceptance test minimises under a
// per-link cost model. Summation order is fixed (p-major over the pair
// matrix), so equal grids always produce bit-equal values.
func (g *Grid) WeightedVoC(w Weights) float64 {
	v := g.PairVolumes()
	var sum float64
	for p := 0; p < NumProcs; p++ {
		for q := 0; q < NumProcs; q++ {
			if p != q && v[p][q] != 0 {
				sum += w[p][q] * float64(v[p][q])
			}
		}
	}
	return sum
}
