// Package partition implements the data-partition grid at the heart of the
// paper: the assignment q(i,j) ∈ {R, S, P} of every element of an N×N
// matrix to one of three heterogeneous processors, together with the
// communication metrics the Push operation and the performance models are
// defined over — per-row/per-column processor occupancy, the Volume of
// Communication (Eq 1), enclosing rectangles, and the candidate canonical
// shapes of Section IX.
package partition

import (
	"fmt"
	"hash/fnv"

	"repro/internal/geom"
)

// Proc identifies one of the three heterogeneous processors. The numeric
// values follow the paper's partition function q (Section IV):
// q = 0 for R, 1 for S, 2 for P.
type Proc uint8

const (
	// R is the middle-speed processor (ratio Rr).
	R Proc = 0
	// S is the slowest processor (ratio Sr = 1).
	S Proc = 1
	// P is the fastest processor (ratio Pr ≥ Rr ≥ Sr).
	P Proc = 2
	// NumProcs is the number of processors in the three-processor study.
	NumProcs = 3
)

// Procs lists all processors in q-value order.
var Procs = [NumProcs]Proc{R, S, P}

func (p Proc) String() string {
	switch p {
	case R:
		return "R"
	case S:
		return "S"
	case P:
		return "P"
	}
	return fmt.Sprintf("Proc(%d)", uint8(p))
}

// Valid reports whether p is one of R, S, P.
func (p Proc) Valid() bool { return p < NumProcs }

// Grid is a concrete partition shape: the assignment of every cell of an
// n×n matrix to a processor, with occupancy counters maintained
// incrementally so that the Volume of Communication (Eq 1) and the
// per-processor communication metrics are O(1) to read and O(1) to update
// per cell mutation.
type Grid struct {
	n     int
	cells []Proc
	// rowCnt[i*NumProcs+p] = number of cells of processor p in row i.
	rowCnt []int32
	colCnt []int32
	// rowOcc[i] = number of distinct processors present in row i (c_i in Eq 1).
	rowOcc []int8
	colOcc []int8
	total  [NumProcs]int
	// rowsWith[p] = number of rows containing at least one cell of p (i_X).
	rowsWith [NumProcs]int
	colsWith [NumProcs]int
	// voc is Eq 1 divided by N: Σ_i (c_i − 1) + Σ_j (c_j − 1).
	voc int
	// fp is the incrementally maintained Zobrist fingerprint: the XOR of
	// zobristKey(idx, cells[idx]) over every cell, updated in O(1) by Set.
	fp uint64
	// baseFP is fp for the all-P start state, cached so Reset is alloc- and
	// hash-free.
	baseFP uint64
}

// zobristKey returns the 64-bit Zobrist key for (cell index, processor).
// Rather than storing an n²×NumProcs key table per grid size, keys are
// computed on demand with the splitmix64 finalizer over the pair's ordinal
// — a few arithmetic ops, no memory, and identical keys for every grid of
// every size, so fingerprints of equal-size grids with equal assignments
// always agree.
func zobristKey(idx int, p Proc) uint64 {
	x := (uint64(idx)*NumProcs + uint64(p) + 1) * 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewGrid returns an n×n grid entirely assigned to processor P — the start
// state of the paper's randomised initialisation (Section VI-A.2).
func NewGrid(n int) *Grid {
	if n <= 0 {
		panic("partition: grid size must be positive")
	}
	g := &Grid{
		n:      n,
		cells:  make([]Proc, n*n),
		rowCnt: make([]int32, n*NumProcs),
		colCnt: make([]int32, n*NumProcs),
		rowOcc: make([]int8, n),
		colOcc: make([]int8, n),
	}
	for i := range g.cells {
		g.cells[i] = P
		g.baseFP ^= zobristKey(i, P)
	}
	for i := 0; i < n; i++ {
		g.rowCnt[i*NumProcs+int(P)] = int32(n)
		g.colCnt[i*NumProcs+int(P)] = int32(n)
		g.rowOcc[i] = 1
		g.colOcc[i] = 1
	}
	g.total[P] = n * n
	g.rowsWith[P] = n
	g.colsWith[P] = n
	g.fp = g.baseFP
	return g
}

// Reset returns the grid to the all-P start state of NewGrid without
// allocating, so pooled grids can be reused across search runs.
func (g *Grid) Reset() {
	n := g.n
	for i := range g.cells {
		g.cells[i] = P
	}
	for i := range g.rowCnt {
		g.rowCnt[i] = 0
		g.colCnt[i] = 0
	}
	for i := 0; i < n; i++ {
		g.rowCnt[i*NumProcs+int(P)] = int32(n)
		g.colCnt[i*NumProcs+int(P)] = int32(n)
		g.rowOcc[i] = 1
		g.colOcc[i] = 1
	}
	g.total = [NumProcs]int{}
	g.rowsWith = [NumProcs]int{}
	g.colsWith = [NumProcs]int{}
	g.total[P] = n * n
	g.rowsWith[P] = n
	g.colsWith[P] = n
	g.voc = 0
	g.fp = g.baseFP
}

// CopyFrom overwrites g with src's assignment and counters without
// allocating. The two grids must have the same dimension.
func (g *Grid) CopyFrom(src *Grid) {
	if g.n != src.n {
		panic(fmt.Sprintf("partition: CopyFrom dimension mismatch %d vs %d", g.n, src.n))
	}
	copy(g.cells, src.cells)
	copy(g.rowCnt, src.rowCnt)
	copy(g.colCnt, src.colCnt)
	copy(g.rowOcc, src.rowOcc)
	copy(g.colOcc, src.colOcc)
	g.total = src.total
	g.rowsWith = src.rowsWith
	g.colsWith = src.colsWith
	g.voc = src.voc
	g.fp = src.fp
}

// N returns the matrix dimension.
func (g *Grid) N() int { return g.n }

// At returns the processor assigned to cell (i, j).
func (g *Grid) At(i, j int) Proc { return g.cells[i*g.n+j] }

// AtIndex returns the processor assigned to the cell with row-major index
// idx = i·N + j. It exists for hot loops (the Push engine's placement
// scans) that precompute affine index maps instead of paying a coordinate
// transform per cell.
func (g *Grid) AtIndex(idx int) Proc { return g.cells[idx] }

// Raw exposes the grid's internal cell and counter slices for READ-ONLY
// use by hot loops: cells is row-major (idx = i·N + j) and the counters
// are indexed [line·NumProcs + proc] as documented on Grid. All mutation
// must still go through Set — writing these slices directly desynchronises
// every derived counter and the fingerprint. The slices stay valid (same
// backing arrays) across Set/Reset/CopyFrom.
func (g *Grid) Raw() (cells []Proc, rowCnt, colCnt []int32) {
	return g.cells, g.rowCnt, g.colCnt
}

// Set assigns cell (i, j) to processor p, updating all occupancy counters
// in O(1).
func (g *Grid) Set(i, j int, p Proc) {
	if !p.Valid() {
		panic("partition: invalid processor")
	}
	idx := i*g.n + j
	old := g.cells[idx]
	if old == p {
		return
	}
	g.cells[idx] = p
	g.fp ^= zobristKey(idx, old) ^ zobristKey(idx, p)
	g.total[old]--
	g.total[p]++

	ro := i*NumProcs + int(old)
	rn := i*NumProcs + int(p)
	g.rowCnt[ro]--
	if g.rowCnt[ro] == 0 {
		g.rowOcc[i]--
		g.voc--
		g.rowsWith[old]--
	}
	if g.rowCnt[rn] == 0 {
		g.rowOcc[i]++
		g.voc++
		g.rowsWith[p]++
	}
	g.rowCnt[rn]++

	co := j*NumProcs + int(old)
	cn := j*NumProcs + int(p)
	g.colCnt[co]--
	if g.colCnt[co] == 0 {
		g.colOcc[j]--
		g.voc--
		g.colsWith[old]--
	}
	if g.colCnt[cn] == 0 {
		g.colOcc[j]++
		g.voc++
		g.colsWith[p]++
	}
	g.colCnt[cn]++
}

// Swap exchanges the processors of cells a and b.
func (g *Grid) Swap(ai, aj, bi, bj int) {
	pa := g.At(ai, aj)
	pb := g.At(bi, bj)
	g.Set(ai, aj, pb)
	g.Set(bi, bj, pa)
}

// Count returns ∈p — the number of cells assigned to p.
func (g *Grid) Count(p Proc) int { return g.total[p] }

// RowCount returns the number of cells of p in row i.
func (g *Grid) RowCount(i int, p Proc) int { return int(g.rowCnt[i*NumProcs+int(p)]) }

// ColCount returns the number of cells of p in column j.
func (g *Grid) ColCount(j int, p Proc) int { return int(g.colCnt[j*NumProcs+int(p)]) }

// RowHas reports whether row i contains any cell of p — the paper's
// row(q, i, X) metric (Section VI-B).
func (g *Grid) RowHas(i int, p Proc) bool { return g.rowCnt[i*NumProcs+int(p)] > 0 }

// ColHas reports whether column j contains any cell of p — col(q, j, X).
func (g *Grid) ColHas(j int, p Proc) bool { return g.colCnt[j*NumProcs+int(p)] > 0 }

// RowProcs returns c_i — the number of distinct processors in row i.
func (g *Grid) RowProcs(i int) int { return int(g.rowOcc[i]) }

// ColProcs returns c_j — the number of distinct processors in column j.
func (g *Grid) ColProcs(j int) int { return int(g.colOcc[j]) }

// RowsWith returns i_X — the number of rows containing elements of p
// (Eq 6).
func (g *Grid) RowsWith(p Proc) int { return g.rowsWith[p] }

// ColsWith returns j_X — the number of columns containing elements of p.
func (g *Grid) ColsWith(p Proc) int { return g.colsWith[p] }

// VoC returns the Volume of Communication of Eq 1 in elements:
//
//	VoC = Σ_i N(c_i − 1) + Σ_j N(c_j − 1)
//
// maintained incrementally, so this is O(1).
func (g *Grid) VoC() int64 { return int64(g.voc) * int64(g.n) }

// VoCRows returns only the row term of Eq 1 divided by N: Σ_i (c_i − 1).
func (g *Grid) VoCRows() int {
	s := 0
	for i := 0; i < g.n; i++ {
		s += int(g.rowOcc[i]) - 1
	}
	return s
}

// VoCCols returns only the column term of Eq 1 divided by N.
func (g *Grid) VoCCols() int {
	s := 0
	for j := 0; j < g.n; j++ {
		s += int(g.colOcc[j]) - 1
	}
	return s
}

// EnclosingRect returns processor p's enclosing rectangle: the smallest
// rectangle strictly large enough to encompass all of p's cells
// (Section II). Returns the empty rectangle when p owns no cells.
func (g *Grid) EnclosingRect(p Proc) geom.Rect {
	if g.total[p] == 0 {
		return geom.EmptyRect
	}
	top, bottom := -1, -1
	for i := 0; i < g.n; i++ {
		if g.RowHas(i, p) {
			if top < 0 {
				top = i
			}
			bottom = i
		}
	}
	left, right := -1, -1
	for j := 0; j < g.n; j++ {
		if g.ColHas(j, p) {
			if left < 0 {
				left = j
			}
			right = j
		}
	}
	return geom.NewRect(top, left, bottom+1, right+1)
}

// Clone returns a deep copy of the grid.
func (g *Grid) Clone() *Grid {
	c := &Grid{
		n:        g.n,
		cells:    append([]Proc(nil), g.cells...),
		rowCnt:   append([]int32(nil), g.rowCnt...),
		colCnt:   append([]int32(nil), g.colCnt...),
		rowOcc:   append([]int8(nil), g.rowOcc...),
		colOcc:   append([]int8(nil), g.colOcc...),
		total:    g.total,
		rowsWith: g.rowsWith,
		colsWith: g.colsWith,
		voc:      g.voc,
		fp:       g.fp,
		baseFP:   g.baseFP,
	}
	return c
}

// Equal reports whether two grids hold identical cell assignments.
func (g *Grid) Equal(o *Grid) bool {
	if g.n != o.n {
		return false
	}
	for i, v := range g.cells {
		if v != o.cells[i] {
			return false
		}
	}
	return true
}

// Fingerprint returns the 64-bit Zobrist hash of the cell assignment, used
// by the DFA runner to detect cycles among VoC-plateau states. The hash is
// maintained incrementally by Set, so this is O(1) — no cell scan.
func (g *Grid) Fingerprint() uint64 { return g.fp }

// FingerprintRescan recomputes the Zobrist hash from the raw cells in
// O(N²). It is the slow oracle the property tests compare the incremental
// Fingerprint against after random mutation/rollback sequences.
func (g *Grid) FingerprintRescan() uint64 {
	var fp uint64
	for i, p := range g.cells {
		fp ^= zobristKey(i, p)
	}
	return fp
}

// FingerprintFNV is the pre-Zobrist content hash (FNV-1a over the cell
// bytes), kept as an independent slow reference: two grids with equal
// assignments must agree under both hash families.
func (g *Grid) FingerprintFNV() uint64 {
	h := fnv.New64a()
	buf := make([]byte, len(g.cells))
	for i, p := range g.cells {
		buf[i] = byte(p)
	}
	h.Write(buf)
	return h.Sum64()
}

// Transpose returns a new grid with rows and columns exchanged:
// q'(i,j) = q(j,i). The Volume of Communication is invariant under
// transposition (Eq 1 is symmetric in rows and columns), which tests use
// to validate the Push engine's direction views.
func (g *Grid) Transpose() *Grid {
	t := NewGrid(g.n)
	for i := 0; i < g.n; i++ {
		for j := 0; j < g.n; j++ {
			t.Set(j, i, g.At(i, j))
		}
	}
	return t
}

// Mask returns a row-major boolean mask of p's cells, the form the masked
// multiplication kernel consumes.
func (g *Grid) Mask(p Proc) []bool {
	m := make([]bool, len(g.cells))
	for i, v := range g.cells {
		m[i] = v == p
	}
	return m
}

// FillRect assigns every cell of r to p.
func (g *Grid) FillRect(r geom.Rect, p Proc) {
	for i := r.Top; i < r.Bottom; i++ {
		for j := r.Left; j < r.Right; j++ {
			g.Set(i, j, p)
		}
	}
}

// OverlapCount returns the number of p's cells (i, j) such that processor p
// owns the entire row i and the entire column j — the elements computable
// with no communication at all, which the bulk-overlap algorithms (SCO,
// PCO) compute while communication is in flight.
func (g *Grid) OverlapCount(p Proc) int {
	n := g.n
	fullCols := make([]bool, n)
	anyFull := false
	for j := 0; j < n; j++ {
		if g.ColCount(j, p) == n {
			fullCols[j] = true
			anyFull = true
		}
	}
	if !anyFull {
		return 0
	}
	count := 0
	for i := 0; i < n; i++ {
		if g.RowCount(i, p) != n {
			continue
		}
		for j := 0; j < n; j++ {
			if fullCols[j] {
				count++
			}
		}
	}
	return count
}

// Validate recomputes every counter from the raw cells and reports the
// first inconsistency found. It is the integrity oracle used by tests and
// failure-injection checks; a healthy grid always returns nil.
func (g *Grid) Validate() error {
	n := g.n
	var total [NumProcs]int
	rowCnt := make([]int32, n*NumProcs)
	colCnt := make([]int32, n*NumProcs)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := g.cells[i*n+j]
			if !p.Valid() {
				return fmt.Errorf("cell (%d,%d) holds invalid processor %d", i, j, p)
			}
			total[p]++
			rowCnt[i*NumProcs+int(p)]++
			colCnt[j*NumProcs+int(p)]++
		}
	}
	if total != g.total {
		return fmt.Errorf("total counts drifted: cached %v, actual %v", g.total, total)
	}
	voc := 0
	var rowsWith, colsWith [NumProcs]int
	for i := 0; i < n; i++ {
		occ := 0
		for p := 0; p < NumProcs; p++ {
			if rowCnt[i*NumProcs+p] != g.rowCnt[i*NumProcs+p] {
				return fmt.Errorf("row %d count for %v drifted", i, Proc(p))
			}
			if rowCnt[i*NumProcs+p] > 0 {
				occ++
				rowsWith[p]++
			}
		}
		if int8(occ) != g.rowOcc[i] {
			return fmt.Errorf("row %d occupancy drifted: cached %d, actual %d", i, g.rowOcc[i], occ)
		}
		voc += occ - 1
	}
	for j := 0; j < n; j++ {
		occ := 0
		for p := 0; p < NumProcs; p++ {
			if colCnt[j*NumProcs+p] != g.colCnt[j*NumProcs+p] {
				return fmt.Errorf("col %d count for %v drifted", j, Proc(p))
			}
			if colCnt[j*NumProcs+p] > 0 {
				occ++
				colsWith[p]++
			}
		}
		if int8(occ) != g.colOcc[j] {
			return fmt.Errorf("col %d occupancy drifted: cached %d, actual %d", j, g.colOcc[j], occ)
		}
		voc += occ - 1
	}
	if voc != g.voc {
		return fmt.Errorf("VoC drifted: cached %d, actual %d", g.voc, voc)
	}
	if rowsWith != g.rowsWith {
		return fmt.Errorf("rowsWith drifted: cached %v, actual %v", g.rowsWith, rowsWith)
	}
	if colsWith != g.colsWith {
		return fmt.Errorf("colsWith drifted: cached %v, actual %v", g.colsWith, colsWith)
	}
	if fp := g.FingerprintRescan(); fp != g.fp {
		return fmt.Errorf("fingerprint drifted: cached %#x, rescan %#x", g.fp, fp)
	}
	return nil
}

// Metrics is a snapshot of the per-processor quantities the performance
// models of Section IV-B consume.
type Metrics struct {
	N int
	// Elements[p] is ∈p.
	Elements [NumProcs]int
	// Rows[p] is i_p, Cols[p] is j_p (rows/cols containing p).
	Rows, Cols [NumProcs]int
	// Overlap[p] counts p's cells in fully-p rows and columns.
	Overlap [NumProcs]int
	// Sends[p] counts the elements p must send, unicast: each cell of p
	// is sent once per *other* processor present in its row (A data) and
	// once per other processor in its column (B data), i.e. the cell
	// contributes (c_i − 1) + (c_j − 1). Summed over processors this
	// equals Eq 1's VoC exactly, and it is zero when p is alone. It is
	// the exact quantity the paper's d_X (Eq 6) approximates.
	Sends [NumProcs]int64
	// PairSends[p][q] splits Sends[p] by receiver (see PairVolumes):
	// Σ_q PairSends[p][q] == Sends[p] and the grand total is VoC, both
	// exact integer identities.
	PairSends [NumProcs][NumProcs]int64
	// VoC is Eq 1 in elements.
	VoC int64
}

// Snapshot gathers the model inputs from the grid.
func (g *Grid) Snapshot() Metrics {
	m := Metrics{N: g.n, VoC: g.VoC()}
	for _, p := range Procs {
		m.Elements[p] = g.Count(p)
		m.Rows[p] = g.RowsWith(p)
		m.Cols[p] = g.ColsWith(p)
		m.Overlap[p] = g.OverlapCount(p)
	}
	m.PairSends = g.PairVolumes()
	for _, p := range Procs {
		for _, q := range Procs {
			m.Sends[p] += m.PairSends[p][q]
		}
	}
	return m
}
