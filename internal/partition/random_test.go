package partition

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestNewRandomCountsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, ratio := range PaperRatios {
		g := NewRandom(60, ratio, rng)
		counts := ratio.Counts(60)
		for _, p := range Procs {
			if g.Count(p) != counts[p] {
				t.Errorf("ratio %v: Count(%v) = %d, want %d", ratio, p, g.Count(p), counts[p])
			}
		}
		if err := g.Validate(); err != nil {
			t.Errorf("ratio %v: %v", ratio, err)
		}
	}
}

func TestNewRandomDeterministicPerSeed(t *testing.T) {
	ratio := MustRatio(3, 2, 1)
	a := NewRandom(40, ratio, rand.New(rand.NewSource(99)))
	b := NewRandom(40, ratio, rand.New(rand.NewSource(99)))
	if !a.Equal(b) {
		t.Error("same seed must give same start state")
	}
	c := NewRandom(40, ratio, rand.New(rand.NewSource(100)))
	if a.Equal(c) {
		t.Error("different seeds should (overwhelmingly) differ")
	}
}

func TestNewRandomClustered(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ratio := MustRatio(4, 2, 1)
	g := NewRandomClustered(64, ratio, rng)
	counts := ratio.Counts(64)
	for _, p := range Procs {
		if g.Count(p) != counts[p] {
			t.Errorf("Count(%v) = %d, want %d", p, g.Count(p), counts[p])
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRenderASCII(t *testing.T) {
	g := NewGrid(100)
	// Bottom-left 40×40 block of R, top-right 20×20 of S.
	for i := 60; i < 100; i++ {
		for j := 0; j < 40; j++ {
			g.Set(i, j, R)
		}
	}
	for i := 0; i < 20; i++ {
		for j := 80; j < 100; j++ {
			g.Set(i, j, S)
		}
	}
	out := g.RenderASCII(10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("want 10 lines, got %d", len(lines))
	}
	if lines[9][0] != 'R' {
		t.Errorf("bottom-left should render R, got %c", lines[9][0])
	}
	if lines[0][9] != 'S' {
		t.Errorf("top-right should render S, got %c", lines[0][9])
	}
	if lines[5][5] != '.' {
		t.Errorf("middle should render P, got %c", lines[5][5])
	}
}

func TestRenderASCIIFullResolutionFallback(t *testing.T) {
	g := NewGrid(4)
	g.Set(0, 0, S)
	out := g.RenderASCII(0) // falls back to n boxes
	if !strings.HasPrefix(out, "S...") {
		t.Errorf("unexpected render:\n%s", out)
	}
}

func TestWritePGM(t *testing.T) {
	g := NewGrid(8)
	g.Set(0, 0, S)
	g.Set(7, 7, R)
	var buf bytes.Buffer
	if err := g.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if !bytes.HasPrefix(data, []byte("P5\n8 8\n255\n")) {
		t.Fatalf("bad header: %q", data[:12])
	}
	pix := data[len("P5\n8 8\n255\n"):]
	if len(pix) != 64 {
		t.Fatalf("pixel count %d", len(pix))
	}
	if pix[0] != 0 {
		t.Errorf("S pixel should be black, got %d", pix[0])
	}
	if pix[63] != 160 {
		t.Errorf("R pixel should be gray, got %d", pix[63])
	}
	if pix[1] != 255 {
		t.Errorf("P pixel should be white, got %d", pix[1])
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := NewRandom(30, MustRatio(5, 2, 1), rng)
	buf := g.Encode()
	back, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Error("decode(encode) differs")
	}
	if err := back.Validate(); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{1, 2}); err == nil {
		t.Error("truncated header should error")
	}
	if _, err := Decode([]byte{0, 0, 0, 3, 0, 0}); err == nil {
		t.Error("wrong length should error")
	}
	g := NewGrid(2)
	buf := g.Encode()
	buf[4] = 9 // invalid processor
	if _, err := Decode(buf); err == nil {
		t.Error("invalid processor should error")
	}
}

func BenchmarkNewRandom(b *testing.B) {
	ratio := MustRatio(2, 1, 1)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		NewRandom(200, ratio, rng)
	}
}

func TestDownsampleProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g := NewRandom(60, MustRatio(3, 2, 1), rng)
	coarse := g.Downsample(15)
	if coarse.N() != 15 {
		t.Fatalf("coarse N = %d", coarse.N())
	}
	if err := coarse.Validate(); err != nil {
		t.Fatal(err)
	}
	// Fallback when boxes out of range: same resolution copy.
	same := g.Downsample(0)
	if same.N() != g.N() || !same.Equal(g) {
		t.Error("Downsample(0) should be an identity copy")
	}
	// A solid block survives downsampling as a solid block.
	solid := NewGrid(40)
	solid.FillRect(geom.NewRect(0, 0, 20, 20), R)
	c := solid.Downsample(10)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if c.At(i, j) != R {
				t.Fatalf("block corner lost at (%d,%d)", i, j)
			}
		}
	}
}
