package partition

import (
	"fmt"
	"strconv"
	"strings"
)

// Ratio is the relative processing-speed ratio Pr : Rr : Sr of the three
// processors (Section IV, assumption 2). The paper normalises Sr = 1 and
// requires Pr ≥ Rr ≥ Sr; constructors here enforce that ordering.
type Ratio struct {
	Pr, Rr, Sr float64
}

// NewRatio builds a validated ratio.
func NewRatio(pr, rr, sr float64) (Ratio, error) {
	r := Ratio{Pr: pr, Rr: rr, Sr: sr}
	if err := r.Validate(); err != nil {
		return Ratio{}, err
	}
	return r, nil
}

// MustRatio is NewRatio that panics on invalid input; for tests and
// literals.
func MustRatio(pr, rr, sr float64) Ratio {
	r, err := NewRatio(pr, rr, sr)
	if err != nil {
		panic(err)
	}
	return r
}

// ParseRatio parses "Pr:Rr:Sr", e.g. "5:2:1". Sr may be omitted
// ("5:2" means 5:2:1).
func ParseRatio(s string) (Ratio, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 && len(parts) != 3 {
		return Ratio{}, fmt.Errorf("partition: ratio %q: want Pr:Rr[:Sr]", s)
	}
	vals := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return Ratio{}, fmt.Errorf("partition: ratio %q: %v", s, err)
		}
		vals[i] = v
	}
	sr := 1.0
	if len(vals) == 3 {
		sr = vals[2]
	}
	return NewRatio(vals[0], vals[1], sr)
}

// Validate checks positivity and the ordering Pr ≥ Rr ≥ Sr.
func (r Ratio) Validate() error {
	if r.Pr <= 0 || r.Rr <= 0 || r.Sr <= 0 {
		return fmt.Errorf("partition: ratio %v: all speeds must be positive", r)
	}
	if r.Pr < r.Rr || r.Rr < r.Sr {
		return fmt.Errorf("partition: ratio %v: want Pr ≥ Rr ≥ Sr", r)
	}
	return nil
}

// T returns the ratio sum Pr + Rr + Sr (Eq 12).
func (r Ratio) T() float64 { return r.Pr + r.Rr + r.Sr }

// Speed returns the relative speed of processor p.
func (r Ratio) Speed(p Proc) float64 {
	switch p {
	case P:
		return r.Pr
	case R:
		return r.Rr
	case S:
		return r.Sr
	}
	panic("partition: invalid processor")
}

// Fraction returns p's share of the matrix, Speed(p)/T — the volume of
// elements assigned to p under computational load balance (Thm 9.1 proof).
func (r Ratio) Fraction(p Proc) float64 { return r.Speed(p) / r.T() }

// Counts apportions the n² matrix elements to the processors
// proportionally to speed using largest-remainder rounding, so the counts
// are exact and sum to n².
func (r Ratio) Counts(n int) [NumProcs]int {
	area := n * n
	t := r.T()
	var counts [NumProcs]int
	var fracs [NumProcs]float64
	assigned := 0
	for _, p := range Procs {
		exact := float64(area) * r.Speed(p) / t
		counts[p] = int(exact)
		fracs[p] = exact - float64(counts[p])
		assigned += counts[p]
	}
	// Hand out the leftover cells to the largest fractional parts,
	// breaking ties toward the faster processor.
	for assigned < area {
		best := -1
		for _, p := range Procs {
			if best < 0 || fracs[p] > fracs[Proc(best)] ||
				(fracs[p] == fracs[Proc(best)] && r.Speed(p) > r.Speed(Proc(best))) {
				best = int(p)
			}
		}
		counts[best]++
		fracs[best] = -1
		assigned++
	}
	return counts
}

// Normalized returns the ratio scaled so Sr = 1.
func (r Ratio) Normalized() Ratio {
	return Ratio{Pr: r.Pr / r.Sr, Rr: r.Rr / r.Sr, Sr: 1}
}

func (r Ratio) String() string {
	return fmt.Sprintf("%s:%s:%s", trimFloat(r.Pr), trimFloat(r.Rr), trimFloat(r.Sr))
}

// Key is the canonical quantization identity of a ratio: the one string
// under which every layer that memoizes by ratio — the serving cache /
// singleflight key in internal/serve and the atlas lattice in
// internal/atlas — agrees on whether two ratios are "the same scenario".
// Each component is rendered with strconv.FormatFloat(v, 'f', -1, 64),
// the shortest decimal that round-trips the exact float64, which is
// injective: Key(a) == Key(b) ⇔ a and b are component-wise equal as
// float64 values. The atlas compares components directly (SameScenario)
// to stay allocation-free on the lookup path; because of injectivity
// that is the same predicate, so a ratio can never atlas-hit while
// cache-missing (or vice versa) through rounding drift.
func (r Ratio) Key() string { return r.String() }

// SameScenario reports whether two ratios quantize to the same Key
// without allocating. It is the comparison the atlas Snap uses; for
// validated ratios (positive finite components, so no NaN or -0) Key
// equality and SameScenario are equivalent (see Key) and a table test
// pins that equivalence.
func (r Ratio) SameScenario(o Ratio) bool {
	return r.Pr == o.Pr && r.Rr == o.Rr && r.Sr == o.Sr
}

func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// PaperRatios are the eleven processor ratios studied in Section VII.
var PaperRatios = []Ratio{
	MustRatio(2, 1, 1),
	MustRatio(3, 1, 1),
	MustRatio(4, 1, 1),
	MustRatio(5, 1, 1),
	MustRatio(10, 1, 1),
	MustRatio(2, 2, 1),
	MustRatio(3, 2, 1),
	MustRatio(4, 2, 1),
	MustRatio(5, 2, 1),
	MustRatio(5, 3, 1),
	MustRatio(5, 4, 1),
}
