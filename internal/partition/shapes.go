package partition

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Shape identifies one of the six candidate canonical partition types of
// Section IX (Figs 11 and 12), the survivors of the Push search after the
// archetype reductions of Section VIII.
type Shape uint8

const (
	// SquareCorner is Type 1A: R and S are squares in opposite corners.
	SquareCorner Shape = iota
	// RectangleCorner is Type 1B: R and S are corner rectangles of
	// combined width N (the optimum when two squares cannot fit,
	// Pr < 2√Rr).
	RectangleCorner
	// SquareRectangle is Type 3: one full-height rectangle plus one
	// square.
	SquareRectangle
	// BlockRectangle is Type 4 (Type 2 reduces to it): a full-width
	// bottom band split between R and S at equal heights.
	BlockRectangle
	// LRectangle is Type 5: a full-height strip (R) and a bottom band
	// across the remainder (S), forming an L around a rectangular P.
	LRectangle
	// TraditionalRectangle is Type 6: the classical all-rectangle
	// partition — P a full-height strip, R and S stacked in the other
	// strip.
	TraditionalRectangle
	numShapes
)

// NumShapes is the number of candidate canonical shapes.
const NumShapes = int(numShapes)

// AllShapes lists the candidates in paper order.
var AllShapes = [NumShapes]Shape{
	SquareCorner, RectangleCorner, SquareRectangle,
	BlockRectangle, LRectangle, TraditionalRectangle,
}

func (s Shape) String() string {
	switch s {
	case SquareCorner:
		return "Square-Corner"
	case RectangleCorner:
		return "Rectangle-Corner"
	case SquareRectangle:
		return "Square-Rectangle"
	case BlockRectangle:
		return "Block-Rectangle"
	case LRectangle:
		return "L-Rectangle"
	case TraditionalRectangle:
		return "Traditional-Rectangle"
	}
	return fmt.Sprintf("Shape(%d)", uint8(s))
}

// ParseShape parses a canonical shape name as printed by Shape.String
// ("Square-Corner", ...). Matching is case-insensitive.
func ParseShape(s string) (Shape, error) {
	for _, c := range AllShapes {
		if strings.EqualFold(c.String(), s) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("partition: unknown shape %q", s)
}

// ErrInfeasible reports that a candidate shape cannot be formed for the
// requested ratio and matrix size (e.g. two squares that do not fit,
// Thm 9.1).
var ErrInfeasible = errors.New("partition: shape infeasible for ratio")

// Build constructs the canonical version of shape s for the given ratio on
// an n×n grid. Cell counts are exact (largest-remainder apportionment);
// each processor's region is rectangular or asymptotically rectangular in
// the paper's sense (at most one partial row/column, Fig 3).
func Build(s Shape, n int, ratio Ratio) (*Grid, error) {
	if err := ratio.Validate(); err != nil {
		return nil, err
	}
	counts := ratio.Counts(n)
	switch s {
	case SquareCorner:
		return buildSquareCorner(n, counts)
	case RectangleCorner:
		return buildRectangleCorner(n, counts)
	case SquareRectangle:
		return buildSquareRectangle(n, counts)
	case BlockRectangle:
		return buildBlockRectangle(n, counts)
	case LRectangle:
		return buildLRectangle(n, counts)
	case TraditionalRectangle:
		return buildTraditionalRectangle(n, counts)
	}
	return nil, fmt.Errorf("partition: unknown shape %v", s)
}

// SquareCornerFeasible implements the generalised Theorem 9.1 feasibility
// condition: two non-overlapping squares of areas Rr/T and Sr/T fit in the
// unit matrix iff √(Rr/T) + √(Sr/T) ≤ 1, which for Sr = Rr reduces to the
// paper's Pr > 2√Rr.
func SquareCornerFeasible(ratio Ratio) bool {
	t := ratio.T()
	return math.Sqrt(ratio.Rr/t)+math.Sqrt(ratio.Sr/t) <= 1
}

// fillCount assigns exactly count cells of processor p scanning the cells
// yielded by next (which must yield distinct in-range cells). It reports
// an error if next runs out first.
func fillCount(g *Grid, p Proc, count int, next func() (int, int, bool)) error {
	for c := 0; c < count; c++ {
		i, j, ok := next()
		if !ok {
			return fmt.Errorf("partition: ran out of cells placing %v (%d of %d): %w", p, c, count, ErrInfeasible)
		}
		g.Set(i, j, p)
	}
	return nil
}

// scanRows yields cells row by row over rows[...] and cols [c0,c1). When
// rightToLeft is set, columns within each row are visited right to left —
// used when two processors fill toward each other so the shared ragged row
// is consumed from opposite ends.
func scanRows(rows []int, c0, c1 int, rightToLeft bool) func() (int, int, bool) {
	ri := 0
	j := c0
	if rightToLeft {
		j = c1 - 1
	}
	return func() (int, int, bool) {
		for {
			if ri >= len(rows) {
				return 0, 0, false
			}
			if !rightToLeft && j < c1 {
				i, jj := rows[ri], j
				j++
				return i, jj, true
			}
			if rightToLeft && j >= c0 {
				i, jj := rows[ri], j
				j--
				return i, jj, true
			}
			ri++
			if rightToLeft {
				j = c1 - 1
			} else {
				j = c0
			}
		}
	}
}

// scanCols yields cells column by column over cols[...] and rows [r0,r1).
// By default rows within a column are visited bottom-up; topDown reverses
// that, so two processors filling a shared ragged column approach from
// opposite ends.
func scanCols(cols []int, r0, r1 int, topDown bool) func() (int, int, bool) {
	ci := 0
	i := r1 - 1
	if topDown {
		i = r0
	}
	return func() (int, int, bool) {
		for {
			if ci >= len(cols) {
				return 0, 0, false
			}
			if !topDown && i >= r0 {
				ii := i
				i--
				return ii, cols[ci], true
			}
			if topDown && i < r1 {
				ii := i
				i++
				return ii, cols[ci], true
			}
			ci++
			if topDown {
				i = r0
			} else {
				i = r1 - 1
			}
		}
	}
}

func ascend(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for v := lo; v < hi; v++ {
		out = append(out, v)
	}
	return out
}

func descend(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for v := hi - 1; v >= lo; v-- {
		out = append(out, v)
	}
	return out
}

func isqrtCeil(v int) int {
	if v <= 0 {
		return 0
	}
	s := int(math.Ceil(math.Sqrt(float64(v))))
	for s > 0 && (s-1)*(s-1) >= v {
		s--
	}
	for s*s < v {
		s++
	}
	return s
}

// buildSquareCorner places R as a (near-)square in the bottom-left corner
// and S as a (near-)square in the top-right corner (Fig 11, left).
func buildSquareCorner(n int, counts [NumProcs]int) (*Grid, error) {
	sideR := isqrtCeil(counts[R])
	sideS := isqrtCeil(counts[S])
	if sideR+sideS > n {
		return nil, fmt.Errorf("squares of sides %d and %d exceed N=%d: %w", sideR, sideS, n, ErrInfeasible)
	}
	g := NewGrid(n)
	// R: bottom-left, filling bottom rows first across columns [0, sideR).
	if err := fillCount(g, R, counts[R], scanRows(descend(n-sideR, n), 0, sideR, false)); err != nil {
		return nil, err
	}
	// S: top-right, filling top rows first across columns [n-sideS, n).
	if err := fillCount(g, S, counts[S], scanRows(ascend(0, sideS), n-sideS, n, false)); err != nil {
		return nil, err
	}
	return g, nil
}

// buildRectangleCorner places R bottom-left and S top-right as rectangles
// whose widths sum to N, choosing the integer split that minimises the
// combined perimeter (the Section IX-B.1 optimisation for Pr < 2√Rr; also
// valid when squares would fit).
func buildRectangleCorner(n int, counts [NumProcs]int) (*Grid, error) {
	bestW, bestCost := -1, math.Inf(1)
	for w := 1; w < n; w++ {
		hR := (counts[R] + w - 1) / w
		wS := n - w
		hS := (counts[S] + wS - 1) / wS
		// Each rectangle must fit vertically; the column strips are
		// disjoint by construction so no horizontal overlap is possible.
		if hR > n || hS > n {
			continue
		}
		cost := float64(counts[R])/float64(w) + float64(w) +
			float64(counts[S])/float64(wS) + float64(wS)
		if cost < bestCost {
			bestCost, bestW = cost, w
		}
	}
	if bestW < 0 {
		return nil, fmt.Errorf("no corner-rectangle split of width N fits: %w", ErrInfeasible)
	}
	g := NewGrid(n)
	// R occupies columns [0, bestW) from the bottom; S occupies columns
	// [bestW, n) from the top. Column strips are disjoint, so the two
	// rectangles can never overlap.
	if err := fillCount(g, R, counts[R], scanRows(descend(0, n), 0, bestW, false)); err != nil {
		return nil, err
	}
	if err := fillCount(g, S, counts[S], scanRows(ascend(0, n), bestW, n, false)); err != nil {
		return nil, err
	}
	return g, nil
}

// buildSquareRectangle places R as a full-height strip on the left and S as
// a square on the bottom edge immediately to its right (Fig 12, Type 3
// canonical form: R_x2 = S_x1, S bottom-aligned).
func buildSquareRectangle(n int, counts [NumProcs]int) (*Grid, error) {
	wR := (counts[R] + n - 1) / n // strip width including partial column
	sideS := isqrtCeil(counts[S])
	if wR+sideS > n {
		return nil, fmt.Errorf("strip width %d plus square side %d exceeds N=%d: %w", wR, sideS, n, ErrInfeasible)
	}
	g := NewGrid(n)
	// R fills whole columns left to right, bottom-up in the last partial
	// column (asymptotically rectangular).
	if err := fillCount(g, R, counts[R], scanCols(ascend(0, wR), 0, n, false)); err != nil {
		return nil, err
	}
	// S: bottom-aligned square adjacent to the strip.
	if err := fillCount(g, S, counts[S], scanRows(descend(n-sideS, n), wR, wR+sideS, false)); err != nil {
		return nil, err
	}
	return g, nil
}

// buildBlockRectangle places R and S side by side in a full-width bottom
// band of equal height h = ⌈(∈R+∈S)/N⌉ (Section IX-B.2: the Type 2 → Type 4
// reduction sets R_height = S_height; canonical corners R_y1 = P_y2,
// S_z1 = P_z2).
//
// Integral bookkeeping: the bottom h−1 rows of the band are filled
// exactly (R from the left, S from the right, meeting in one shared
// column); the leftover r* = band − (h−1)·N cells sit in the band's top
// row, R's share from the left and S's from the right. All P slack is
// thereby confined to the middle of that single top row, so the grid's
// VoC matches the closed form N(h+N) to O(1) lines.
func buildBlockRectangle(n int, counts [NumProcs]int) (*Grid, error) {
	band := counts[R] + counts[S]
	h := (band + n - 1) / n
	if h > n {
		return nil, ErrInfeasible
	}
	g := NewGrid(n)
	if h == 0 {
		return g, nil
	}
	rStar := band - (h-1)*n // filled cells of the band's top row (1..n)
	topR := counts[R] * rStar / band
	topS := rStar - topR
	// Clamp so neither processor's bottom share goes negative.
	if counts[S] < topS {
		topS = counts[S]
		topR = rStar - topS
	}
	if counts[R] < topR {
		topR = counts[R]
		topS = rStar - topR
	}
	bottomR := counts[R] - topR
	bottomS := counts[S] - topS // bottomR+bottomS == (h−1)·n exactly
	// Bottom block: R bottom-up from the left, S top-down from the right,
	// so the shared boundary column splits cleanly.
	if err := fillCount(g, R, bottomR, scanCols(ascend(0, n), n-h+1, n, false)); err != nil {
		return nil, err
	}
	if err := fillCount(g, S, bottomS, scanCols(descend(0, n), n-h+1, n, true)); err != nil {
		return nil, err
	}
	// Top band row: R from the left, S from the right, P slack between.
	if err := fillCount(g, R, topR, scanRows([]int{n - h}, 0, n, false)); err != nil {
		return nil, err
	}
	if err := fillCount(g, S, topS, scanRows([]int{n - h}, 0, n, true)); err != nil {
		return nil, err
	}
	return g, nil
}

// buildLRectangle places R as a full-height strip on the left and S as a
// band across the bottom of the remaining columns; together they form an L
// and P's remainder is a rectangle (Fig 12, Type 5).
//
// Integral bookkeeping: R's cells beyond its whole columns sit at the TOP
// of one ragged column, and S's band runs underneath that column. Putting
// the overflow at the bottom instead (the obvious fill) leaves a P segment
// above it, and every band row crossing that segment would host {R,S,P} —
// a three-processor row costing double, an O(1) VoC excess whenever the
// band is taller than the overflow. With the overflow on top only the
// ragged column itself (and S's one partial row) mixes three processors,
// keeping the grid within O(1/N) of the closed form 1 + (1−fR).
func buildLRectangle(n int, counts [NumProcs]int) (*Grid, error) {
	wFull := counts[R] / n
	rPart := counts[R] - wFull*n // R cells in the ragged column
	rem := n - wFull             // band columns, ragged one included
	if rem <= 0 {
		return nil, ErrInfeasible
	}
	hS := (counts[S] + rem - 1) / rem
	if rPart+hS <= n {
		g := NewGrid(n)
		if err := fillCount(g, R, wFull*n, scanCols(ascend(0, wFull), 0, n, false)); err != nil {
			return nil, err
		}
		if err := fillCount(g, R, rPart, scanCols([]int{wFull}, 0, n, true)); err != nil {
			return nil, err
		}
		// S fills bottom rows across all band columns, bottom row first.
		if err := fillCount(g, S, counts[S], scanRows(descend(n-hS, n), wFull, n, false)); err != nil {
			return nil, err
		}
		return g, nil
	}
	// The ragged column cannot hold both R's overflow and the band: fall
	// back to ceding the whole column to R's strip (the band loses one
	// column but the shape stays an L).
	wR := wFull + 1
	rem = n - wR
	if rem <= 0 {
		return nil, ErrInfeasible
	}
	hS = (counts[S] + rem - 1) / rem
	if hS > n {
		return nil, ErrInfeasible
	}
	g := NewGrid(n)
	if err := fillCount(g, R, counts[R], scanCols(ascend(0, wR), 0, n, false)); err != nil {
		return nil, err
	}
	if err := fillCount(g, S, counts[S], scanRows(descend(n-hS, n), wR, n, false)); err != nil {
		return nil, err
	}
	return g, nil
}

// buildTraditionalRectangle stacks R (top) and S (bottom) in a right-hand
// full-height strip of width ⌈(∈R+∈S)/N⌉, leaving P the left strip — the
// classical rectangular partition (Fig 12, Type 6).
//
// Integral bookkeeping mirrors buildBlockRectangle, transposed: the
// strip's rightmost w−1 columns are filled exactly (R from the top, S
// from the bottom, meeting in one shared row); the leftover
// c* = (∈R+∈S) − (w−1)·N cells occupy the strip's leftmost column, R's
// share at its top and S's at its bottom, confining all P slack to that
// single column.
func buildTraditionalRectangle(n int, counts [NumProcs]int) (*Grid, error) {
	band := counts[R] + counts[S]
	w := (band + n - 1) / n
	if w > n {
		return nil, ErrInfeasible
	}
	g := NewGrid(n)
	if w == 0 {
		return g, nil
	}
	cStar := band - (w-1)*n // filled cells of the strip's left column
	colR := counts[R] * cStar / band
	colS := cStar - colR
	if counts[S] < colS {
		colS = counts[S]
		colR = cStar - colS
	}
	if counts[R] < colR {
		colR = counts[R]
		colS = cStar - colR
	}
	innerR := counts[R] - colR
	innerS := counts[S] - colS // innerR+innerS == (w−1)·n exactly
	left := n - w
	// Inner strip: R row-major from the top-left, S row-major from the
	// bottom-right, meeting in one shared row.
	if err := fillCount(g, R, innerR, scanRows(ascend(0, n), left+1, n, false)); err != nil {
		return nil, err
	}
	if err := fillCount(g, S, innerS, scanRows(descend(0, n), left+1, n, true)); err != nil {
		return nil, err
	}
	// Strip's left column: R from the top, S from the bottom, P between.
	if err := fillCount(g, R, colR, scanCols([]int{left}, 0, n, true)); err != nil {
		return nil, err
	}
	if err := fillCount(g, S, colS, scanCols([]int{left}, 0, n, false)); err != nil {
		return nil, err
	}
	return g, nil
}
