package partition

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParseRatio(t *testing.T) {
	cases := []struct {
		in      string
		want    Ratio
		wantErr bool
	}{
		{"5:2:1", Ratio{5, 2, 1}, false},
		{"5:2", Ratio{5, 2, 1}, false},
		{"10 : 1 : 1", Ratio{10, 1, 1}, false},
		{"2.5:1.5:1", Ratio{2.5, 1.5, 1}, false},
		{"1:2:3", Ratio{}, true}, // violates Pr ≥ Rr ≥ Sr
		{"5", Ratio{}, true},
		{"a:b:c", Ratio{}, true},
		{"0:0:0", Ratio{}, true},
		{"-1:1:1", Ratio{}, true},
	}
	for _, c := range cases {
		got, err := ParseRatio(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseRatio(%q): expected error, got %v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseRatio(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseRatio(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRatioT(t *testing.T) {
	r := MustRatio(5, 2, 1)
	if r.T() != 8 {
		t.Errorf("T = %v, want 8", r.T())
	}
}

func TestRatioSpeedAndFraction(t *testing.T) {
	r := MustRatio(5, 2, 1)
	if r.Speed(P) != 5 || r.Speed(R) != 2 || r.Speed(S) != 1 {
		t.Error("Speed wrong")
	}
	if r.Fraction(P) != 5.0/8 {
		t.Errorf("Fraction(P) = %v", r.Fraction(P))
	}
}

func TestRatioSpeedInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Speed of invalid proc should panic")
		}
	}()
	MustRatio(2, 1, 1).Speed(Proc(9))
}

func TestRatioCountsExact(t *testing.T) {
	for _, r := range PaperRatios {
		for _, n := range []int{10, 33, 100, 1000} {
			counts := r.Counts(n)
			sum := counts[P] + counts[R] + counts[S]
			if sum != n*n {
				t.Errorf("ratio %v n=%d: counts sum %d != %d", r, n, sum, n*n)
			}
			// Counts are within one cell of the exact fractional share.
			for _, p := range Procs {
				exact := float64(n*n) * r.Fraction(p)
				if d := float64(counts[p]) - exact; d < -1 || d > 1 {
					t.Errorf("ratio %v n=%d proc %v: count %d vs exact %.2f", r, n, p, counts[p], exact)
				}
			}
		}
	}
}

func TestQuickCountsAlwaysSum(t *testing.T) {
	f := func(a, b, c uint8, nn uint8) bool {
		pr := float64(a%20) + 1
		rr := float64(b%20) + 1
		sr := float64(c%20) + 1
		if rr > pr {
			pr, rr = rr, pr
		}
		if sr > rr {
			rr, sr = sr, rr
		}
		if rr > pr {
			pr, rr = rr, pr
		}
		r := MustRatio(pr, rr, sr)
		n := int(nn%50) + 2
		counts := r.Counts(n)
		return counts[P]+counts[R]+counts[S] == n*n &&
			counts[P] >= 0 && counts[R] >= 0 && counts[S] >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRatioNormalized(t *testing.T) {
	r := MustRatio(10, 4, 2)
	n := r.Normalized()
	if n.Pr != 5 || n.Rr != 2 || n.Sr != 1 {
		t.Errorf("Normalized = %v", n)
	}
}

func TestRatioString(t *testing.T) {
	if got := MustRatio(5, 2, 1).String(); got != "5:2:1" {
		t.Errorf("String = %q", got)
	}
	if got := MustRatio(2.5, 1.5, 1).String(); got != "2.5:1.5:1" {
		t.Errorf("String = %q", got)
	}
}

func TestPaperRatiosValid(t *testing.T) {
	if len(PaperRatios) != 11 {
		t.Fatalf("paper studies 11 ratios, have %d", len(PaperRatios))
	}
	for _, r := range PaperRatios {
		if err := r.Validate(); err != nil {
			t.Errorf("paper ratio %v invalid: %v", r, err)
		}
		if r.Sr != 1 {
			t.Errorf("paper ratio %v should be normalised to Sr=1", r)
		}
	}
}

func TestMustRatioPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustRatio should panic on invalid ratio")
		}
	}()
	MustRatio(1, 2, 3)
}

func TestRatioKeyCanonical(t *testing.T) {
	// Every spelling of the same float64 components must collapse to one
	// key — this is the identity both the serve cache and the atlas
	// lattice quantize on, so drift here would split the tiers.
	tests := []struct {
		inputs []string // parse-equivalent spellings
		key    string   // the single canonical key
	}{
		{[]string{"5:2:1", "5.0:2.00:1", "  5 : 2 : 1 ", "5:2"}, "5:2:1"},
		{[]string{"2.5:1.5:1", "2.50:1.50:1.0", "2.5:1.5"}, "2.5:1.5:1"},
		{[]string{"10:1:1", "10.0:1.0:1.0"}, "10:1:1"},
		{[]string{"3.25:2.75:1", "3.250:2.750:1"}, "3.25:2.75:1"},
		// 0.1 is not exactly representable; the shortest round-trip of
		// the float64 nearest 1.1 is still "1.1".
		{[]string{"1.1:1.1:1.1", "1.10:1.10:1.10"}, "1.1:1.1:1.1"},
	}
	for _, tc := range tests {
		for _, in := range tc.inputs {
			r, err := ParseRatio(in)
			if err != nil {
				t.Fatalf("ParseRatio(%q): %v", in, err)
			}
			if got := r.Key(); got != tc.key {
				t.Errorf("ParseRatio(%q).Key() = %q, want %q", in, got, tc.key)
			}
			// The key must round-trip: parsing it yields the exact same
			// scenario, so a ratio that reached one layer as a key
			// string is bit-identical everywhere.
			back, err := ParseRatio(r.Key())
			if err != nil {
				t.Fatalf("ParseRatio(Key %q): %v", r.Key(), err)
			}
			if !back.SameScenario(r) {
				t.Errorf("Key %q did not round-trip: %v vs %v", r.Key(), back, r)
			}
		}
	}
}

func TestRatioKeyEquivalentToSameScenario(t *testing.T) {
	// Key equality and the allocation-free SameScenario comparison must
	// be the same predicate on validated ratios: the atlas snaps with
	// SameScenario while the serve cache keys on Key, and any gap would
	// let a ratio atlas-hit under one cache key and miss under another.
	ulp := func(v float64) float64 { return math.Nextafter(v, math.Inf(1)) }
	ratios := []Ratio{
		MustRatio(5, 2, 1),
		MustRatio(5, 2, 1),
		MustRatio(2.5, 1.5, 1),
		MustRatio(ulp(2.5), 1.5, 1), // one ULP off: a different scenario
		MustRatio(2.5, ulp(1.5), 1),
		MustRatio(0.1+0.2, 0.3, 0.3), // 0.30000000000000004 ≠ 0.3
		MustRatio(0.3, 0.3, 0.3),
		MustRatio(1.1, 1.1, 1.1),
	}
	for i, a := range ratios {
		for j, b := range ratios {
			keyEq := a.Key() == b.Key()
			scenEq := a.SameScenario(b)
			if keyEq != scenEq {
				t.Errorf("ratios[%d]=%v ratios[%d]=%v: Key equality %v but SameScenario %v",
					i, a, j, b, keyEq, scenEq)
			}
		}
	}
}
