package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestNewGridAllP(t *testing.T) {
	g := NewGrid(8)
	if g.N() != 8 {
		t.Fatalf("N = %d", g.N())
	}
	if g.Count(P) != 64 || g.Count(R) != 0 || g.Count(S) != 0 {
		t.Fatalf("counts = %d %d %d", g.Count(P), g.Count(R), g.Count(S))
	}
	if g.VoC() != 0 {
		t.Fatalf("single-processor grid must have VoC 0, got %d", g.VoC())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewGridInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGrid(0) should panic")
		}
	}()
	NewGrid(0)
}

func TestSetUpdatesCounters(t *testing.T) {
	g := NewGrid(4)
	g.Set(1, 2, R)
	if g.At(1, 2) != R {
		t.Fatal("At after Set")
	}
	if g.Count(R) != 1 || g.Count(P) != 15 {
		t.Fatalf("counts %d %d", g.Count(R), g.Count(P))
	}
	if !g.RowHas(1, R) || !g.ColHas(2, R) {
		t.Fatal("RowHas/ColHas")
	}
	if g.RowProcs(1) != 2 || g.ColProcs(2) != 2 {
		t.Fatal("occupancy")
	}
	// Row 1 and column 2 each now host 2 processors: VoC = N*(1) + N*(1).
	if g.VoC() != 8 {
		t.Fatalf("VoC = %d, want 8", g.VoC())
	}
	if g.RowsWith(R) != 1 || g.ColsWith(R) != 1 {
		t.Fatal("rowsWith/colsWith")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Setting the same value is a no-op.
	g.Set(1, 2, R)
	if g.VoC() != 8 || g.Count(R) != 1 {
		t.Fatal("idempotent Set changed state")
	}
}

func TestSetInvalidProcPanics(t *testing.T) {
	g := NewGrid(2)
	defer func() {
		if recover() == nil {
			t.Error("Set with invalid proc should panic")
		}
	}()
	g.Set(0, 0, Proc(7))
}

func TestVoCMatchesDefinition(t *testing.T) {
	// Randomised cross-check of the incremental VoC against Eq 1 computed
	// from scratch.
	rng := rand.New(rand.NewSource(7))
	g := NewGrid(16)
	for k := 0; k < 2000; k++ {
		g.Set(rng.Intn(16), rng.Intn(16), Procs[rng.Intn(3)])
		if k%97 == 0 {
			want := int64(g.VoCRows()+g.VoCCols()) * int64(g.N())
			if g.VoC() != want {
				t.Fatalf("step %d: incremental VoC %d != definition %d", k, g.VoC(), want)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("step %d: %v", k, err)
			}
		}
	}
}

func TestSwap(t *testing.T) {
	g := NewGrid(4)
	g.Set(0, 0, R)
	g.Set(3, 3, S)
	g.Swap(0, 0, 3, 3)
	if g.At(0, 0) != S || g.At(3, 3) != R {
		t.Fatal("Swap did not exchange")
	}
	if g.Count(R) != 1 || g.Count(S) != 1 {
		t.Fatal("Swap changed counts")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEnclosingRect(t *testing.T) {
	g := NewGrid(10)
	if !g.EnclosingRect(R).IsEmpty() {
		t.Fatal("empty processor must have empty rect")
	}
	g.Set(2, 3, R)
	g.Set(7, 5, R)
	got := g.EnclosingRect(R)
	want := geom.NewRect(2, 3, 8, 6)
	if got != want {
		t.Fatalf("rect = %v, want %v", got, want)
	}
	// P's enclosing rectangle is the whole matrix.
	if g.EnclosingRect(P) != geom.NewRect(0, 0, 10, 10) {
		t.Fatal("P rect should be full matrix")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := NewGrid(6)
	g.Set(1, 1, R)
	c := g.Clone()
	if !c.Equal(g) {
		t.Fatal("clone differs")
	}
	c.Set(2, 2, S)
	if g.At(2, 2) != P {
		t.Fatal("clone mutation leaked")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Equal(c) {
		t.Fatal("Equal should detect difference")
	}
}

func TestEqualDifferentSizes(t *testing.T) {
	if NewGrid(3).Equal(NewGrid(4)) {
		t.Fatal("grids of different sizes cannot be equal")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	g := NewGrid(8)
	f0 := g.Fingerprint()
	g.Set(4, 4, S)
	if g.Fingerprint() == f0 {
		t.Fatal("fingerprint should change with cells")
	}
	h := NewGrid(8)
	h.Set(4, 4, S)
	if h.Fingerprint() != g.Fingerprint() {
		t.Fatal("equal grids must share fingerprints")
	}
}

func TestMask(t *testing.T) {
	g := NewGrid(3)
	g.Set(0, 1, R)
	g.Set(2, 2, R)
	m := g.Mask(R)
	wantIdx := map[int]bool{1: true, 8: true}
	for i, v := range m {
		if v != wantIdx[i] {
			t.Fatalf("mask[%d] = %v", i, v)
		}
	}
}

func TestFillRect(t *testing.T) {
	g := NewGrid(6)
	r := geom.NewRect(1, 2, 4, 5)
	g.FillRect(r, S)
	if g.Count(S) != r.Area() {
		t.Fatalf("Count(S) = %d, want %d", g.Count(S), r.Area())
	}
	if g.EnclosingRect(S) != r {
		t.Fatalf("rect = %v", g.EnclosingRect(S))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapCount(t *testing.T) {
	// P owns everything except a 2×2 S block: P has no fully-owned rows
	// through the S rows, and no fully-owned columns through the S cols.
	g := NewGrid(6)
	g.FillRect(geom.NewRect(0, 0, 2, 2), S)
	// Fully-P rows: 2..5 (4 rows). Fully-P cols: 2..5 (4 cols).
	// Overlap(P) = 4*4 = 16 cells.
	if got := g.OverlapCount(P); got != 16 {
		t.Fatalf("Overlap(P) = %d, want 16", got)
	}
	if got := g.OverlapCount(S); got != 0 {
		t.Fatalf("Overlap(S) = %d, want 0", got)
	}
	// A full-width S band: S fully owns its rows but no full columns.
	g2 := NewGrid(6)
	g2.FillRect(geom.NewRect(4, 0, 6, 6), S)
	if got := g2.OverlapCount(S); got != 0 {
		t.Fatalf("band Overlap(S) = %d, want 0 (no full columns)", got)
	}
	// Single-processor grid: everything is overlap.
	g3 := NewGrid(4)
	if got := g3.OverlapCount(P); got != 16 {
		t.Fatalf("all-P Overlap = %d, want 16", got)
	}
}

func TestSnapshot(t *testing.T) {
	g := NewGrid(5)
	g.FillRect(geom.NewRect(0, 0, 2, 2), R)
	m := g.Snapshot()
	if m.N != 5 {
		t.Fatal("N")
	}
	if m.Elements[R] != 4 || m.Elements[P] != 21 {
		t.Fatalf("elements %v", m.Elements)
	}
	if m.Rows[R] != 2 || m.Cols[R] != 2 {
		t.Fatalf("rows/cols %v %v", m.Rows, m.Cols)
	}
	if m.VoC != g.VoC() {
		t.Fatal("VoC mismatch")
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	g := NewGrid(4)
	g.Set(1, 1, R)
	// Corrupt the raw cells behind the counters' back.
	g.cells[0] = S
	if err := g.Validate(); err == nil {
		t.Fatal("Validate must detect corrupted cells")
	}
}

func TestQuickRandomMutationInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGrid(9)
		for k := 0; k < 300; k++ {
			g.Set(rng.Intn(9), rng.Intn(9), Procs[rng.Intn(3)])
		}
		if g.Count(P)+g.Count(R)+g.Count(S) != 81 {
			return false
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestProcString(t *testing.T) {
	if R.String() != "R" || S.String() != "S" || P.String() != "P" {
		t.Fatal("proc names")
	}
	if Proc(9).Valid() {
		t.Fatal("Proc(9) should be invalid")
	}
}

func BenchmarkSet(b *testing.B) {
	g := NewGrid(1000)
	rng := rand.New(rand.NewSource(1))
	idx := make([][2]int, 4096)
	for i := range idx {
		idx[i] = [2]int{rng.Intn(1000), rng.Intn(1000)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := idx[i%len(idx)]
		g.Set(c[0], c[1], Procs[i%3])
	}
}

func BenchmarkVoC(b *testing.B) {
	g := NewGrid(1000)
	g.FillRect(geom.NewRect(0, 0, 300, 300), R)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.VoC() < 0 {
			b.Fatal("impossible")
		}
	}
}

func BenchmarkSnapshot(b *testing.B) {
	g := NewGrid(500)
	g.FillRect(geom.NewRect(0, 0, 150, 150), R)
	g.FillRect(geom.NewRect(350, 350, 500, 500), S)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Snapshot()
	}
}

func TestSendsSumToVoC(t *testing.T) {
	// The unicast send volumes decompose Eq 1's VoC exactly, for any
	// arrangement of elements.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		g := NewRandom(24, PaperRatios[trial%len(PaperRatios)], rng)
		snap := g.Snapshot()
		var sum int64
		for _, p := range Procs {
			sum += snap.Sends[p]
		}
		if sum != g.VoC() {
			t.Fatalf("trial %d: Σ sends = %d, VoC = %d", trial, sum, g.VoC())
		}
	}
}
