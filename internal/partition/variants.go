package partition

import (
	"fmt"
	"math"
)

// Corner identifies a matrix corner for variant placements (§IX-A notes
// each candidate type admits positional freedom; Theorem 8.1 implies the
// choices are VoC-equivalent, which the variant constructors let tests
// verify directly).
type Corner uint8

// The four corners.
const (
	BottomLeft Corner = iota
	BottomRight
	TopLeft
	TopRight
)

func (c Corner) String() string {
	switch c {
	case BottomLeft:
		return "bottom-left"
	case BottomRight:
		return "bottom-right"
	case TopLeft:
		return "top-left"
	case TopRight:
		return "top-right"
	}
	return fmt.Sprintf("Corner(%d)", uint8(c))
}

// cornerScan yields a near-square fill order anchored at the corner.
func cornerScan(n, side int, c Corner) func() (int, int, bool) {
	switch c {
	case BottomLeft:
		return scanRows(descend(n-side, n), 0, side, false)
	case BottomRight:
		return scanRows(descend(n-side, n), n-side, n, true)
	case TopLeft:
		return scanRows(ascend(0, side), 0, side, false)
	case TopRight:
		return scanRows(ascend(0, side), n-side, n, true)
	}
	panic("partition: invalid corner")
}

// BuildSquareCornerAt constructs the Square-Corner with R anchored
// bottom-left and S in the chosen other corner. All choices are
// VoC-equivalent (the positional freedom of §IX-A); the default Build
// uses TopRight.
func BuildSquareCornerAt(n int, ratio Ratio, sCorner Corner) (*Grid, error) {
	if err := ratio.Validate(); err != nil {
		return nil, err
	}
	if sCorner == BottomLeft {
		return nil, fmt.Errorf("partition: S cannot share R's bottom-left corner: %w", ErrInfeasible)
	}
	counts := ratio.Counts(n)
	sideR := isqrtCeil(counts[R])
	sideS := isqrtCeil(counts[S])
	if sideR+sideS > n {
		return nil, fmt.Errorf("squares of sides %d and %d exceed N=%d: %w", sideR, sideS, n, ErrInfeasible)
	}
	g := NewGrid(n)
	if err := fillCount(g, R, counts[R], cornerScan(n, sideR, BottomLeft)); err != nil {
		return nil, err
	}
	if err := fillCount(g, S, counts[S], cornerScan(n, sideS, sCorner)); err != nil {
		return nil, err
	}
	return g, nil
}

// BuildRectangleCornerSplit constructs the Type 1B Rectangle-Corner with
// an explicit column split: R occupies columns [0, wR) from the bottom,
// S columns [wR, N) from the top. The default Build chooses the
// perimeter-minimising wR; this variant exposes the free parameter so the
// §IX-B.1 optimisation can be validated by sweeping it.
func BuildRectangleCornerSplit(n int, ratio Ratio, wR int) (*Grid, error) {
	if err := ratio.Validate(); err != nil {
		return nil, err
	}
	if wR < 1 || wR >= n {
		return nil, fmt.Errorf("partition: split %d out of range (1..%d): %w", wR, n-1, ErrInfeasible)
	}
	counts := ratio.Counts(n)
	if (counts[R]+wR-1)/wR > n || (counts[S]+(n-wR)-1)/(n-wR) > n {
		return nil, fmt.Errorf("partition: split %d cannot hold the counts: %w", wR, ErrInfeasible)
	}
	g := NewGrid(n)
	if err := fillCount(g, R, counts[R], scanRows(descend(0, n), 0, wR, false)); err != nil {
		return nil, err
	}
	if err := fillCount(g, S, counts[S], scanRows(ascend(0, n), wR, n, false)); err != nil {
		return nil, err
	}
	return g, nil
}

// OptimalRectangleCornerSplit returns the split the §IX-B.1 perimeter
// minimisation selects (the one Build uses), for comparison against
// sweeps of BuildRectangleCornerSplit.
func OptimalRectangleCornerSplit(n int, ratio Ratio) (int, error) {
	if err := ratio.Validate(); err != nil {
		return 0, err
	}
	counts := ratio.Counts(n)
	bestW, bestCost := -1, math.Inf(1)
	for w := 1; w < n; w++ {
		hR := (counts[R] + w - 1) / w
		wS := n - w
		hS := (counts[S] + wS - 1) / wS
		if hR > n || hS > n {
			continue
		}
		cost := float64(counts[R])/float64(w) + float64(w) +
			float64(counts[S])/float64(wS) + float64(wS)
		if cost < bestCost {
			bestCost, bestW = cost, w
		}
	}
	if bestW < 0 {
		return 0, ErrInfeasible
	}
	return bestW, nil
}
