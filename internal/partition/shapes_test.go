package partition

import (
	"errors"
	"math"
	"testing"
)

// checkCanonical verifies the structural invariants every candidate
// constructor must satisfy: exact counts, internal consistency, and at
// most mildly ragged (asymptotically rectangular) regions for R and S.
func checkCanonical(t *testing.T, g *Grid, ratio Ratio, shape Shape) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("%v %v: %v", shape, ratio, err)
	}
	counts := ratio.Counts(g.N())
	for _, p := range Procs {
		if g.Count(p) != counts[p] {
			t.Errorf("%v %v: Count(%v) = %d, want %d", shape, ratio, p, g.Count(p), counts[p])
		}
	}
	// R and S must be asymptotically rectangular (Fig 3): either the area
	// slack stays under one edge length, or all foreign cells inside the
	// enclosing rectangle are confined to its boundary ring.
	for _, p := range [2]Proc{R, S} {
		r := g.EnclosingRect(p)
		slack := r.Area() - g.Count(p)
		maxEdge := r.Width()
		if r.Height() > maxEdge {
			maxEdge = r.Height()
		}
		if slack < 0 {
			t.Fatalf("%v %v: rect smaller than count for %v", shape, ratio, p)
		}
		if slack > 0 && slack >= maxEdge {
			interiorClean := true
			for i := r.Top + 1; i < r.Bottom-1 && interiorClean; i++ {
				for j := r.Left + 1; j < r.Right-1; j++ {
					if g.At(i, j) != p {
						interiorClean = false
						break
					}
				}
			}
			if !interiorClean {
				t.Errorf("%v %v: %v not asymptotically rectangular: rect %v area %d count %d",
					shape, ratio, p, r, r.Area(), g.Count(p))
			}
		}
	}
}

func TestBuildAllShapesAllPaperRatios(t *testing.T) {
	const n = 100
	for _, ratio := range PaperRatios {
		for _, shape := range AllShapes {
			g, err := Build(shape, n, ratio)
			if err != nil {
				if shape == SquareCorner && !SquareCornerFeasible(ratio) {
					continue // expected infeasibility
				}
				if shape == SquareRectangle && errors.Is(err, ErrInfeasible) {
					continue // square may not fit next to the strip for low heterogeneity
				}
				t.Errorf("Build(%v, %v): %v", shape, ratio, err)
				continue
			}
			checkCanonical(t, g, ratio, shape)
		}
	}
}

func TestSquareCornerFeasibility(t *testing.T) {
	// Thm 9.1: with Rr = Sr the condition is Pr > 2√Rr.
	cases := []struct {
		ratio Ratio
		want  bool
	}{
		{MustRatio(2, 1, 1), true},  // 2 ≥ 2√1
		{MustRatio(10, 1, 1), true}, // highly heterogeneous
		{MustRatio(3, 2, 1), false}, // √(2/6)+√(1/6) = 0.985... ≤ 1 — actually feasible
		{MustRatio(2, 2, 1), false}, // √(2/5)+√(1/5) = 1.08 > 1
		{MustRatio(5, 4, 1), true},  // √(4/10)+√(1/10) = 0.948 ≤ 1
	}
	for _, c := range cases {
		got := SquareCornerFeasible(c.ratio)
		// recompute expectation directly to avoid hand arithmetic errors
		tt := c.ratio.T()
		want := math.Sqrt(c.ratio.Rr/tt)+math.Sqrt(c.ratio.Sr/tt) <= 1
		if got != want {
			t.Errorf("SquareCornerFeasible(%v) = %v, want %v", c.ratio, got, want)
		}
	}
	// The explicit paper form: Pr > 2√Rr for Rr=Sr... verify equivalence on a sweep.
	for pr := 1.0; pr <= 30; pr += 0.5 {
		for rr := 1.0; rr <= pr; rr++ {
			ratio := MustRatio(pr, rr, rr) // Sr=Rr variant
			tt := ratio.T()
			lhs := math.Sqrt(ratio.Rr/tt) + math.Sqrt(ratio.Sr/tt)
			paper := pr >= 2*math.Sqrt(rr*rr) // Pr ≥ 2√(Rr·Sr) generalised
			if (lhs <= 1) != paper {
				// allow boundary disagreement only at exact equality
				if math.Abs(lhs-1) > 1e-9 {
					t.Errorf("feasibility mismatch at Pr=%v Rr=Sr=%v: lhs=%v paper=%v", pr, rr, lhs, paper)
				}
			}
		}
	}
}

func TestSquareCornerGeometry(t *testing.T) {
	ratio := MustRatio(10, 1, 1)
	const n = 120
	g, err := Build(SquareCorner, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	rRect := g.EnclosingRect(R)
	sRect := g.EnclosingRect(S)
	// R bottom-left, S top-right, disjoint.
	if rRect.Bottom != n || rRect.Left != 0 {
		t.Errorf("R not anchored bottom-left: %v", rRect)
	}
	if sRect.Top != 0 || sRect.Right != n {
		t.Errorf("S not anchored top-right: %v", sRect)
	}
	if rRect.Overlaps(sRect) {
		t.Error("corner squares must not overlap")
	}
	// Near-square: width and height differ by at most 1.
	for _, rc := range []struct {
		p Proc
		r int
	}{{R, rRect.Width() - rRect.Height()}, {S, sRect.Width() - sRect.Height()}} {
		if rc.r < -1 || rc.r > 1 {
			t.Errorf("%v region not square-ish: skew %d", rc.p, rc.r)
		}
	}
}

func TestSquareCornerInfeasibleRatio(t *testing.T) {
	ratio := MustRatio(2, 2, 1) // √(2/5)+√(1/5) > 1
	if SquareCornerFeasible(ratio) {
		t.Fatal("2:2:1 should be infeasible for Square-Corner")
	}
	if _, err := Build(SquareCorner, 100, ratio); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("Build should report ErrInfeasible, got %v", err)
	}
}

func TestBlockRectangleEqualHeights(t *testing.T) {
	ratio := MustRatio(4, 2, 1)
	const n = 140
	g, err := Build(BlockRectangle, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	rRect := g.EnclosingRect(R)
	sRect := g.EnclosingRect(S)
	if rRect.Top != sRect.Top || rRect.Bottom != n || sRect.Bottom != n {
		t.Errorf("band not aligned: R %v S %v", rRect, sRect)
	}
	// Cells never overlap (exact counts prove it); the enclosing
	// rectangles may share at most the one ragged boundary column.
	if ov := rRect.Intersect(sRect); ov.Width() > 1 {
		t.Errorf("R and S enclosing rects overlap by %d columns", ov.Width())
	}
	// Band height h = ceil((∈R+∈S)/n).
	counts := ratio.Counts(n)
	wantH := (counts[R] + counts[S] + n - 1) / n
	if rRect.Height() != wantH {
		t.Errorf("band height %d, want %d", rRect.Height(), wantH)
	}
}

func TestTraditionalRectangleIsAllRectangles(t *testing.T) {
	ratio := MustRatio(3, 2, 1)
	const n = 120
	g, err := Build(TraditionalRectangle, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	// P must occupy a clean left strip: every column is single-processor
	// except possibly one ragged boundary column.
	mixed := 0
	for j := 0; j < n; j++ {
		if g.ColProcs(j) > 1 {
			// Columns in the R/S strip host 2 processors (R on top, S below).
			if !g.ColHas(j, R) && !g.ColHas(j, S) {
				t.Fatalf("column %d mixes processors unexpectedly", j)
			}
			mixed++
		}
	}
	if mixed == 0 {
		t.Error("expected the R/S strip to host two processors per column")
	}
	// P's region is exactly its enclosing rectangle up to the ragged strip
	// boundary: P fully owns all columns to the left of the strip.
	counts := ratio.Counts(n)
	w := (counts[R] + counts[S] + n - 1) / n
	for j := 0; j < n-w; j++ {
		if g.ColCount(j, P) != n {
			t.Fatalf("column %d should be pure P", j)
		}
	}
}

func TestLRectangleLeavesPRectangular(t *testing.T) {
	ratio := MustRatio(5, 2, 1)
	const n = 120
	g, err := Build(LRectangle, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	// P's cells should form (nearly) a rectangle: count close to rect area.
	pRect := g.EnclosingRect(P)
	slack := pRect.Area() - g.Count(P)
	if slack < 0 {
		t.Fatal("impossible")
	}
	// Allow raggedness from the partial columns/rows of R and S.
	if slack > 2*n {
		t.Errorf("P far from rectangular: rect %v area %d count %d", pRect, pRect.Area(), g.Count(P))
	}
}

func TestSquareRectangleGeometry(t *testing.T) {
	ratio := MustRatio(10, 1, 1)
	const n = 120
	g, err := Build(SquareRectangle, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	rRect := g.EnclosingRect(R)
	sRect := g.EnclosingRect(S)
	if rRect.Top != 0 || rRect.Bottom != n || rRect.Left != 0 {
		t.Errorf("R not a left full-height strip: %v", rRect)
	}
	if sRect.Bottom != n {
		t.Errorf("S square not bottom-aligned: %v", sRect)
	}
	if skew := sRect.Width() - sRect.Height(); skew < -1 || skew > 1 {
		t.Errorf("S not square-ish: %v", sRect)
	}
	if rRect.Overlaps(sRect) {
		t.Error("strip and square must not overlap")
	}
}

func TestRectangleCornerSplit(t *testing.T) {
	ratio := MustRatio(2, 2, 1) // square-corner infeasible here
	const n = 100
	g, err := Build(RectangleCorner, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	rRect := g.EnclosingRect(R)
	sRect := g.EnclosingRect(S)
	// Widths sum to N (disjoint column strips).
	if rRect.Width()+sRect.Width() != n {
		t.Errorf("widths %d + %d != %d", rRect.Width(), sRect.Width(), n)
	}
	if rRect.Overlaps(sRect) {
		t.Error("corner rectangles must not overlap")
	}
}

func TestBuildInvalidRatio(t *testing.T) {
	if _, err := Build(BlockRectangle, 50, Ratio{0, 0, 0}); err == nil {
		t.Error("invalid ratio should error")
	}
}

func TestBuildUnknownShape(t *testing.T) {
	if _, err := Build(Shape(99), 50, MustRatio(2, 1, 1)); err == nil {
		t.Error("unknown shape should error")
	}
}

func TestShapeStrings(t *testing.T) {
	want := map[Shape]string{
		SquareCorner:         "Square-Corner",
		RectangleCorner:      "Rectangle-Corner",
		SquareRectangle:      "Square-Rectangle",
		BlockRectangle:       "Block-Rectangle",
		LRectangle:           "L-Rectangle",
		TraditionalRectangle: "Traditional-Rectangle",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), w)
		}
	}
}

// Analytic VoC checks: the constructed grids must reproduce the closed-form
// communication volumes the Section X comparison uses.
func TestSquareCornerAnalyticVoC(t *testing.T) {
	ratio := MustRatio(10, 1, 1)
	const n = 300
	g, err := Build(SquareCorner, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	// VoC = 2N(R_w + S_w) for two disjoint squares (rows crossing each
	// square have 2 processors, likewise columns).
	rw := g.EnclosingRect(R).Width()
	sw := g.EnclosingRect(S).Width()
	want := int64(2 * n * (rw + sw))
	got := g.VoC()
	// Raggedness (partial top row of a square) shifts the exact value by
	// at most a few rows/columns.
	if math.Abs(float64(got-want)) > float64(4*n) {
		t.Errorf("VoC = %d, analytic 2N(Rw+Sw) = %d", got, want)
	}
}

func TestBlockRectangleAnalyticVoC(t *testing.T) {
	ratio := MustRatio(5, 2, 1)
	const n = 320
	g, err := Build(BlockRectangle, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	// Rows in the band host {R,S} (2 procs, P is above only when the band
	// is below P's rows... P spans all columns above) => each band row has
	// 2 procs (R,S) — plus possibly P in the slack cells. Columns all host
	// 2 procs (P plus one of R/S). Analytic: VoC ≈ N(h + N).
	counts := ratio.Counts(n)
	h := (counts[R] + counts[S] + n - 1) / n
	want := int64(n * (h + n))
	got := g.VoC()
	if math.Abs(float64(got-want)) > float64(4*n) {
		t.Errorf("VoC = %d, analytic N(h+N) = %d", got, want)
	}
}

func TestTraditionalAnalyticVoC(t *testing.T) {
	ratio := MustRatio(4, 2, 1)
	const n = 280
	g, err := Build(TraditionalRectangle, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	// Strip columns host 2 procs (R,S) -> w; rows all host 2 procs
	// (P + R or S) -> N. VoC ≈ N(w + N).
	counts := ratio.Counts(n)
	w := (counts[R] + counts[S] + n - 1) / n
	want := int64(n * (w + n))
	if got := g.VoC(); math.Abs(float64(got-want)) > float64(4*n) {
		t.Errorf("VoC = %d, analytic N(w+N) = %d", got, want)
	}
}

func BenchmarkBuildShapes(b *testing.B) {
	ratio := MustRatio(5, 2, 1)
	for _, s := range AllShapes {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Build(s, 200, ratio); err != nil && !errors.Is(err, ErrInfeasible) {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestParseShape(t *testing.T) {
	for _, s := range AllShapes {
		got, err := ParseShape(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseShape(%q) = %v, %v", s.String(), got, err)
		}
	}
	if got, err := ParseShape("square-corner"); err != nil || got != SquareCorner {
		t.Fatalf("case-insensitive parse: %v, %v", got, err)
	}
	if _, err := ParseShape("Pentagon"); err == nil {
		t.Fatal("unknown shape should error")
	}
}
