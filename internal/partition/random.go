package partition

import "math/rand"

// NewRandom builds the random start state q₀ of the DFA exactly as the
// paper describes (Section VI-A.2): every element begins assigned to the
// fastest processor P; then each slower processor X in turn claims its
// quota by drawing random (row, column) pairs, claiming the element only if
// it still belongs to P.
//
// The quota for each processor comes from ratio.Counts(n), so the element
// counts match the processing-speed ratio exactly.
func NewRandom(n int, ratio Ratio, rng *rand.Rand) *Grid {
	g := NewGrid(n)
	RandomizeInto(g, ratio, rng)
	return g
}

// RandomizeInto resets g to the all-P state and redraws the paper's uniform
// random start in place — the allocation-free form of NewRandom that lets
// the census reuse pooled grids instead of allocating N² cells per run. It
// consumes rng identically to NewRandom, so seeded runs are reproducible
// whichever entry point built the grid.
func RandomizeInto(g *Grid, ratio Ratio, rng *rand.Rand) {
	g.Reset()
	n := g.N()
	counts := ratio.Counts(n)
	for _, x := range [2]Proc{R, S} {
		remaining := counts[x]
		for remaining > 0 {
			i := rng.Intn(n)
			j := rng.Intn(n)
			if g.At(i, j) == P {
				g.Set(i, j, x)
				remaining--
			}
		}
	}
}

// NewRandomClustered builds a random start state whose R and S cells are
// drawn from random rectangular patches rather than uniformly — a harder
// adversarial family for the Push search used by the census harness to
// widen coverage of start states beyond the paper's uniform sampling.
func NewRandomClustered(n int, ratio Ratio, rng *rand.Rand) *Grid {
	g := NewGrid(n)
	RandomizeClusteredInto(g, ratio, rng)
	return g
}

// RandomizeClusteredInto is the in-place, allocation-free form of
// NewRandomClustered, mirroring RandomizeInto.
func RandomizeClusteredInto(g *Grid, ratio Ratio, rng *rand.Rand) {
	g.Reset()
	n := g.N()
	counts := ratio.Counts(n)
	for _, x := range [2]Proc{R, S} {
		remaining := counts[x]
		for remaining > 0 {
			// Pick a random patch and claim P-cells inside it.
			h := 1 + rng.Intn(n/2+1)
			w := 1 + rng.Intn(n/2+1)
			top := rng.Intn(n - h + 1)
			left := rng.Intn(n - w + 1)
			for i := top; i < top+h && remaining > 0; i++ {
				for j := left; j < left+w && remaining > 0; j++ {
					if g.At(i, j) == P {
						g.Set(i, j, x)
						remaining--
					}
				}
			}
		}
	}
}
