package partition

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// TestFingerprintIncrementalMatchesRescan is the equivalence property for
// the O(1) fingerprint: after any sequence of random mutations, the
// incrementally maintained Zobrist hash equals the full-rescan oracle.
func TestFingerprintIncrementalMatchesRescan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{2, 3, 16, 40} {
		g := NewRandom(n, MustRatio(2, 1, 1), rng)
		if got, want := g.Fingerprint(), g.FingerprintRescan(); got != want {
			t.Fatalf("n=%d: fresh random grid fp %#x, rescan %#x", n, got, want)
		}
		for step := 0; step < 2000; step++ {
			switch rng.Intn(10) {
			case 0:
				g.Swap(rng.Intn(n), rng.Intn(n), rng.Intn(n), rng.Intn(n))
			default:
				g.Set(rng.Intn(n), rng.Intn(n), Proc(rng.Intn(NumProcs)))
			}
			if got, want := g.Fingerprint(), g.FingerprintRescan(); got != want {
				t.Fatalf("n=%d step %d: incremental fp %#x, rescan %#x", n, step, got, want)
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// TestFingerprintSurvivesLifecycle checks the fingerprint across every
// non-Set mutation path: Reset, CopyFrom, Clone, Decode and FillRect must
// all leave the incremental hash equal to the rescan oracle, and equal
// grids must agree on it however they were produced.
func TestFingerprintSurvivesLifecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 24
	g := NewRandomClustered(n, MustRatio(3, 2, 1), rng)

	clone := g.Clone()
	if clone.Fingerprint() != g.Fingerprint() {
		t.Fatal("clone changed the fingerprint")
	}

	dec, err := Decode(g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Fingerprint() != g.Fingerprint() {
		t.Fatalf("decode round-trip fp %#x, want %#x", dec.Fingerprint(), g.Fingerprint())
	}

	fresh := NewGrid(n)
	base := fresh.Fingerprint()
	clone.Reset()
	if clone.Fingerprint() != base {
		t.Fatalf("reset fp %#x, want the all-P fingerprint %#x", clone.Fingerprint(), base)
	}
	if clone.Fingerprint() != clone.FingerprintRescan() {
		t.Fatal("reset fingerprint diverges from rescan")
	}

	clone.CopyFrom(g)
	if clone.Fingerprint() != g.Fingerprint() || !clone.Equal(g) {
		t.Fatal("CopyFrom did not reproduce the source grid and fingerprint")
	}

	tr := g.Transpose()
	if tr.Fingerprint() != tr.FingerprintRescan() {
		t.Fatal("transpose fingerprint diverges from rescan")
	}

	g.FillRect(geom.Rect{Top: 2, Left: 3, Bottom: 9, Right: 14}, S)
	if g.Fingerprint() != g.FingerprintRescan() {
		t.Fatal("FillRect fingerprint diverges from rescan")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFingerprintDiscriminates sanity-checks that the hash actually
// separates nearby states: flipping any single cell changes it, and
// flipping it back restores it.
func TestFingerprintDiscriminates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 12
	g := NewRandom(n, MustRatio(2, 1, 1), rng)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			before := g.Fingerprint()
			old := g.At(i, j)
			g.Set(i, j, (old+1)%NumProcs)
			if g.Fingerprint() == before {
				t.Fatalf("fingerprint blind to cell (%d,%d)", i, j)
			}
			g.Set(i, j, old)
			if g.Fingerprint() != before {
				t.Fatalf("fingerprint not restored at (%d,%d)", i, j)
			}
		}
	}
}
