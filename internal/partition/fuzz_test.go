package partition

import (
	"bytes"
	"testing"
)

// FuzzDecode hardens the grid deserialiser: arbitrary bytes must either
// round-trip exactly or be rejected, never corrupt a grid or panic.
func FuzzDecode(f *testing.F) {
	g := NewGrid(4)
	g.Set(1, 2, R)
	g.Set(3, 3, S)
	f.Add(g.Encode())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 2})
	f.Add([]byte{0, 0, 0, 2, 0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		grid, err := Decode(data)
		if err != nil {
			return
		}
		if err := grid.Validate(); err != nil {
			t.Fatalf("decoded grid fails validation: %v", err)
		}
		if !bytes.Equal(grid.Encode(), data) {
			t.Fatal("decode/encode not a fixed point on accepted input")
		}
	})
}

// FuzzParseRatio hardens the ratio parser: accepted ratios must be valid
// and re-parseable via String.
func FuzzParseRatio(f *testing.F) {
	for _, s := range []string{"5:2:1", "2:1", "1:1:1", "x", "5:", ":::", "1e9:2:1", "-1:2:1"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		r, err := ParseRatio(s)
		if err != nil {
			return
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("ParseRatio accepted invalid ratio %v: %v", r, err)
		}
		back, err := ParseRatio(r.String())
		if err != nil {
			t.Fatalf("String() of accepted ratio does not re-parse: %q", r.String())
		}
		if back != r {
			t.Fatalf("round trip changed ratio: %v -> %v", r, back)
		}
	})
}
