package partition

import (
	"fmt"
	"io"
	"strings"
)

// RenderASCII draws the partition at reduced granularity, the way Fig 7
// presents the example run: the grid is divided into boxes×boxes squares
// and each box is drawn with the glyph of the processor owning the
// majority of its cells ('.' for P, 'R', 'S'; majority ties break toward
// the slower processor so small regions stay visible).
func (g *Grid) RenderASCII(boxes int) string {
	var b strings.Builder
	g.renderTo(&b, boxes)
	return b.String()
}

func (g *Grid) renderTo(w io.Writer, boxes int) {
	if boxes <= 0 || boxes > g.n {
		boxes = g.n
	}
	glyph := [NumProcs]byte{R: 'R', S: 'S', P: '.'}
	line := make([]byte, boxes+1)
	line[boxes] = '\n'
	for bi := 0; bi < boxes; bi++ {
		r0 := bi * g.n / boxes
		r1 := (bi + 1) * g.n / boxes
		for bj := 0; bj < boxes; bj++ {
			c0 := bj * g.n / boxes
			c1 := (bj + 1) * g.n / boxes
			var tally [NumProcs]int
			for i := r0; i < r1; i++ {
				for j := c0; j < c1; j++ {
					tally[g.At(i, j)]++
				}
			}
			// Majority owner; ties break S > R > P so the slowest
			// (smallest) processor never vanishes from the picture.
			best := P
			for _, p := range [3]Proc{R, S, P} {
				if tally[p] > tally[best] || (tally[p] == tally[best] && p != P && best == P) {
					best = p
				}
			}
			line[bj] = glyph[best]
		}
		if _, err := w.Write(line); err != nil {
			return
		}
	}
}

// Downsample returns a boxes×boxes grid in which each cell holds the
// majority owner of the corresponding block of g — the same reduction the
// paper uses to present partitions at 1/100th granularity (Fig 7).
// Majority ties break toward the slower processor (S over R over P) so
// small regions never vanish.
func (g *Grid) Downsample(boxes int) *Grid {
	if boxes <= 0 || boxes > g.n {
		boxes = g.n
	}
	out := NewGrid(boxes)
	for bi := 0; bi < boxes; bi++ {
		r0 := bi * g.n / boxes
		r1 := (bi + 1) * g.n / boxes
		for bj := 0; bj < boxes; bj++ {
			c0 := bj * g.n / boxes
			c1 := (bj + 1) * g.n / boxes
			var tally [NumProcs]int
			for i := r0; i < r1; i++ {
				for j := c0; j < c1; j++ {
					tally[g.At(i, j)]++
				}
			}
			best := P
			for _, p := range [3]Proc{R, S, P} {
				if tally[p] > tally[best] || (tally[p] == tally[best] && p != P && best == P) {
					best = p
				}
			}
			out.Set(bi, bj, best)
		}
	}
	return out
}

// WritePGM writes the partition as a binary PGM image (one pixel per cell;
// P=white, R=gray, S=black), matching the paper's white/gray/black figure
// convention.
func (g *Grid) WritePGM(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", g.n, g.n); err != nil {
		return err
	}
	shade := [NumProcs]byte{P: 255, R: 160, S: 0}
	row := make([]byte, g.n)
	for i := 0; i < g.n; i++ {
		for j := 0; j < g.n; j++ {
			row[j] = shade[g.At(i, j)]
		}
		if _, err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

// Encode serialises the grid into a compact byte form (size header plus
// one byte per cell) that Decode restores exactly.
func (g *Grid) Encode() []byte {
	buf := make([]byte, 4+len(g.cells))
	buf[0] = byte(g.n >> 24)
	buf[1] = byte(g.n >> 16)
	buf[2] = byte(g.n >> 8)
	buf[3] = byte(g.n)
	for i, p := range g.cells {
		buf[4+i] = byte(p)
	}
	return buf
}

// Decode restores a grid from Encode's output.
func Decode(buf []byte) (*Grid, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("partition: decode: truncated header")
	}
	n := int(buf[0])<<24 | int(buf[1])<<16 | int(buf[2])<<8 | int(buf[3])
	if n <= 0 || len(buf) != 4+n*n {
		return nil, fmt.Errorf("partition: decode: bad length %d for n=%d", len(buf), n)
	}
	g := NewGrid(n)
	for idx, b := range buf[4:] {
		p := Proc(b)
		if !p.Valid() {
			return nil, fmt.Errorf("partition: decode: invalid processor %d at cell %d", b, idx)
		}
		g.Set(idx/n, idx%n, p)
	}
	return g, nil
}
