package partition

import (
	"math/rand"
	"testing"
)

// pairVolumesOracle recomputes V[p][q] by brute force over cells.
func pairVolumesOracle(g *Grid) [NumProcs][NumProcs]int64 {
	var v [NumProcs][NumProcs]int64
	n := g.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := g.At(i, j)
			for _, q := range Procs {
				if q == p {
					continue
				}
				if g.RowHas(i, q) {
					v[p][q]++
				}
				if g.ColHas(j, q) {
					v[p][q]++
				}
			}
		}
	}
	return v
}

// sendsOracle is the pre-PairVolumes Snapshot loop, kept as the reference
// for the per-processor send volumes.
func sendsOracle(g *Grid) [NumProcs]int64 {
	var sends [NumProcs]int64
	for i := 0; i < g.N(); i++ {
		rowOthers := int64(g.RowProcs(i) - 1)
		for j := 0; j < g.N(); j++ {
			p := g.At(i, j)
			sends[p] += rowOthers + int64(g.ColProcs(j)-1)
		}
	}
	return sends
}

func randomPairGrid(t *testing.T, rng *rand.Rand, n int) *Grid {
	t.Helper()
	g := NewGrid(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			g.Set(i, j, Procs[rng.Intn(NumProcs)])
		}
	}
	return g
}

func TestPairVolumesIdentities(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	grids := []*Grid{NewGrid(8)} // all-P: no communication at all
	for _, n := range []int{5, 16, 33} {
		grids = append(grids, randomPairGrid(t, rng, n))
	}
	for _, s := range AllShapes {
		if g, err := Build(s, 24, Ratio{Pr: 5, Rr: 2, Sr: 1}); err == nil {
			grids = append(grids, g)
		}
	}
	for gi, g := range grids {
		v := g.PairVolumes()
		want := pairVolumesOracle(g)
		if v != want {
			t.Fatalf("grid %d: PairVolumes = %v, oracle %v", gi, v, want)
		}
		var total int64
		var rowSums [NumProcs]int64
		for _, p := range Procs {
			if v[p][p] != 0 {
				t.Fatalf("grid %d: diagonal V[%v][%v] = %d, want 0", gi, p, p, v[p][p])
			}
			for _, q := range Procs {
				total += v[p][q]
				rowSums[p] += v[p][q]
			}
		}
		if total != g.VoC() {
			t.Fatalf("grid %d: ΣV = %d, VoC = %d", gi, total, g.VoC())
		}
		if rowSums != sendsOracle(g) {
			t.Fatalf("grid %d: row sums %v, sends oracle %v", gi, rowSums, sendsOracle(g))
		}
		snap := g.Snapshot()
		if snap.PairSends != v {
			t.Fatalf("grid %d: Snapshot.PairSends disagrees with PairVolumes", gi)
		}
		if snap.Sends != rowSums {
			t.Fatalf("grid %d: Snapshot.Sends %v, want %v", gi, snap.Sends, rowSums)
		}
	}
}

func TestWeightedVoCUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		g := randomPairGrid(t, rng, 4+rng.Intn(30))
		if got, want := g.WeightedVoC(UniformWeights()), float64(g.VoC()); got != want {
			t.Fatalf("uniform WeightedVoC = %v, want exactly %v", got, want)
		}
	}
	if !UniformWeights().Uniform() {
		t.Fatal("UniformWeights().Uniform() = false")
	}
	w := UniformWeights()
	w[R][S] = 2
	if w.Uniform() {
		t.Fatal("non-uniform weights reported Uniform")
	}
}

func TestWeightedVoCScaling(t *testing.T) {
	// Doubling one directed link's weight adds exactly that link's volume.
	g, err := Build(BlockRectangle, 32, Ratio{Pr: 3, Rr: 2, Sr: 1})
	if err != nil {
		t.Fatal(err)
	}
	v := g.PairVolumes()
	base := g.WeightedVoC(UniformWeights())
	w := UniformWeights()
	w[R][S] = 2
	if got, want := g.WeightedVoC(w), base+float64(v[R][S]); got != want {
		t.Fatalf("scaled WeightedVoC = %v, want %v", got, want)
	}
}
