package shape

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/partition"
	"repro/internal/push"
)

func TestCornerTaxonomyRectangle(t *testing.T) {
	g := partition.NewGrid(20)
	g.FillRect(geom.NewRect(3, 4, 9, 15), partition.R)
	if got := CornerCount(g, partition.R); got != 4 {
		t.Errorf("rectangle corners = %d, want 4", got)
	}
	// The complement (P) has the matrix's 4 corners plus 4 around the hole.
	if got := CornerCount(g, partition.P); got != 8 {
		t.Errorf("P-with-hole corners = %d, want 8", got)
	}
}

func TestCornerTaxonomyLShape(t *testing.T) {
	g := partition.NewGrid(20)
	g.FillRect(geom.NewRect(2, 2, 10, 6), partition.R)   // vertical bar
	g.FillRect(geom.NewRect(10, 2, 14, 14), partition.R) // horizontal bar
	if got := CornerCount(g, partition.R); got != 6 {
		t.Errorf("L corners = %d, want 6", got)
	}
}

func TestCornerTaxonomySurround(t *testing.T) {
	g, err := Exemplar(ArchetypeD, 24)
	if err != nil {
		t.Fatal(err)
	}
	if got := CornerCount(g, partition.R); got != 8 {
		t.Errorf("surround corners = %d, want 8", got)
	}
	if got := CornerCount(g, partition.S); got != 4 {
		t.Errorf("inner square corners = %d, want 4", got)
	}
}

func TestCornerTaxonomyDiagonalTouch(t *testing.T) {
	// Two cells touching only at a vertex produce 2 corners at that
	// vertex (the pinch), 8 in total.
	g := partition.NewGrid(6)
	g.Set(1, 1, partition.S)
	g.Set(2, 2, partition.S)
	if got := CornerCount(g, partition.S); got != 8 {
		t.Errorf("diagonal pinch corners = %d, want 8", got)
	}
}

func TestCornerCountSingleCell(t *testing.T) {
	g := partition.NewGrid(5)
	g.Set(2, 2, partition.R)
	if got := CornerCount(g, partition.R); got != 4 {
		t.Errorf("single cell corners = %d, want 4", got)
	}
}

func TestComponents(t *testing.T) {
	g := partition.NewGrid(10)
	if got := Components(g, partition.R); got != 0 {
		t.Errorf("empty processor components = %d", got)
	}
	g.FillRect(geom.NewRect(0, 0, 2, 2), partition.R)
	g.FillRect(geom.NewRect(5, 5, 7, 7), partition.R)
	if got := Components(g, partition.R); got != 2 {
		t.Errorf("components = %d, want 2", got)
	}
	g.FillRect(geom.NewRect(2, 0, 5, 6), partition.R) // bridge them
	if got := Components(g, partition.R); got != 1 {
		t.Errorf("bridged components = %d, want 1", got)
	}
}

func TestIsAsymptoticallyRectangular(t *testing.T) {
	// Perfect rectangle.
	g := partition.NewGrid(16)
	g.FillRect(geom.NewRect(2, 2, 8, 10), partition.R)
	if !IsAsymptoticallyRectangular(g, partition.R) {
		t.Error("perfect rectangle must qualify")
	}
	// One shorter top row (paper's Fig 3, left).
	g2 := partition.NewGrid(16)
	g2.FillRect(geom.NewRect(3, 2, 8, 10), partition.R)
	for j := 2; j < 6; j++ {
		g2.Set(2, j, partition.R)
	}
	if !IsAsymptoticallyRectangular(g2, partition.R) {
		t.Error("single partial edge row must qualify")
	}
	// A two-step staircase with deep steps (Fig 3, right) must fail.
	g3 := partition.NewGrid(16)
	g3.FillRect(geom.NewRect(0, 0, 4, 4), partition.R)
	g3.FillRect(geom.NewRect(4, 0, 12, 12), partition.R)
	if IsAsymptoticallyRectangular(g3, partition.R) {
		t.Error("deep staircase must not qualify")
	}
	// Empty processor.
	if IsAsymptoticallyRectangular(partition.NewGrid(8), partition.R) {
		t.Error("empty processor must not qualify")
	}
	// Holes confined to the boundary ring qualify.
	g4 := partition.NewGrid(16)
	g4.FillRect(geom.NewRect(2, 2, 10, 10), partition.R)
	g4.Set(2, 4, partition.P)
	g4.Set(5, 2, partition.P)
	if !IsAsymptoticallyRectangular(g4, partition.R) {
		t.Error("boundary-ring holes must qualify")
	}
}

func TestExemplarsClassify(t *testing.T) {
	for _, a := range []Archetype{ArchetypeA, ArchetypeB, ArchetypeC, ArchetypeD} {
		g, err := Exemplar(a, 32)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if got := Classify(g); got != a {
			an := Analyze(g)
			t.Errorf("Exemplar(%v) classified as %v (%+v)", a, got, an)
		}
	}
}

func TestExemplarErrors(t *testing.T) {
	if _, err := Exemplar(ArchetypeA, 4); err == nil {
		t.Error("tiny grid should error")
	}
	if _, err := Exemplar(ArchetypeUnknown, 32); err == nil {
		t.Error("unknown archetype should error")
	}
}

func TestClassifyCanonicalCandidatesAreA(t *testing.T) {
	// Every Section IX candidate shape is Archetype A by construction.
	ratio := partition.MustRatio(5, 2, 1)
	for _, s := range partition.AllShapes {
		g, err := partition.Build(s, 120, ratio)
		if err != nil {
			continue
		}
		if got := Classify(g); got != ArchetypeA {
			t.Errorf("candidate %v classified as %v", s, got)
		}
	}
}

func TestClassifyEmptyProcessors(t *testing.T) {
	if got := Classify(partition.NewGrid(20)); got != ArchetypeUnknown {
		t.Errorf("all-P grid classified as %v", got)
	}
}

func TestArchetypeStrings(t *testing.T) {
	want := map[Archetype]string{
		ArchetypeA: "A", ArchetypeB: "B", ArchetypeC: "C",
		ArchetypeD: "D", ArchetypeUnknown: "Unknown",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), s)
		}
	}
}

func TestTranslateCombinedPreservesVoC(t *testing.T) {
	// Theorem 8.1: moving the combined R∪S shape leaves VoC unchanged.
	g, err := Exemplar(ArchetypeB, 32)
	if err != nil {
		t.Fatal(err)
	}
	voc := g.VoC()
	counts := [3]int{g.Count(partition.R), g.Count(partition.S), g.Count(partition.P)}
	if err := TranslateCombined(g, 3, 5); err != nil {
		t.Fatal(err)
	}
	if g.VoC() != voc {
		t.Fatalf("VoC changed %d -> %d", voc, g.VoC())
	}
	if g.Count(partition.R) != counts[0] || g.Count(partition.S) != counts[1] {
		t.Fatal("counts changed")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTranslateCombinedRejectsOutOfBounds(t *testing.T) {
	g, err := Exemplar(ArchetypeA, 16)
	if err != nil {
		t.Fatal(err)
	}
	before := g.Fingerprint()
	if err := TranslateCombined(g, 100, 0); err == nil {
		t.Fatal("out-of-bounds translation must fail")
	}
	if g.Fingerprint() != before {
		t.Fatal("failed translation mutated the grid")
	}
}

func TestTranslateCombinedNoOp(t *testing.T) {
	g := partition.NewGrid(16) // no R or S at all
	if err := TranslateCombined(g, 2, 2); err != nil {
		t.Fatal(err)
	}
}

func TestTranslateCombinedOverlappingMove(t *testing.T) {
	// Small shift where source and target regions overlap.
	g, err := Exemplar(ArchetypeD, 24)
	if err != nil {
		t.Fatal(err)
	}
	voc := g.VoC()
	if err := TranslateCombined(g, 1, 1); err != nil {
		t.Fatal(err)
	}
	if g.VoC() != voc {
		t.Fatalf("VoC changed %d -> %d", voc, g.VoC())
	}
}

func TestReduceExemplarsToA(t *testing.T) {
	// Theorems 8.2–8.4: every archetype reduces to A without raising VoC.
	for _, a := range []Archetype{ArchetypeB, ArchetypeC, ArchetypeD} {
		g, err := Exemplar(a, 32)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ReduceToA(g)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if res.To != ArchetypeA {
			t.Errorf("%v reduced to %v, want A", a, res.To)
		}
		if res.VoCAfter > res.VoCBefore {
			t.Errorf("%v: VoC rose %d -> %d", a, res.VoCBefore, res.VoCAfter)
		}
		for _, p := range partition.Procs {
			if res.Grid.Count(p) != g.Count(p) {
				t.Errorf("%v: count(%v) changed", a, p)
			}
		}
		if err := res.Grid.Validate(); err != nil {
			t.Errorf("%v: %v", a, err)
		}
	}
}

func TestReduceDoesNotMutateInput(t *testing.T) {
	g, err := Exemplar(ArchetypeC, 32)
	if err != nil {
		t.Fatal(err)
	}
	orig := g.Clone()
	if _, err := ReduceToA(g); err != nil {
		t.Fatal(err)
	}
	if !g.Equal(orig) {
		t.Fatal("ReduceToA mutated its input")
	}
}

func TestReduceDFATerminalStates(t *testing.T) {
	// End-to-end: DFA terminal states of every paper ratio reduce to A
	// with non-increasing VoC — the full Section VIII pipeline.
	for i, ratio := range partition.PaperRatios {
		res, err := push.Run(push.Config{N: 40, Ratio: ratio, Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		red, err := ReduceToA(res.Final)
		if err != nil {
			t.Fatalf("ratio %v: %v", ratio, err)
		}
		if red.To != ArchetypeA {
			t.Errorf("ratio %v: reduced to %v (from %v)", ratio, red.To, red.From)
		}
		if red.VoCAfter > red.VoCBefore {
			t.Errorf("ratio %v: VoC rose", ratio)
		}
	}
}

func TestPostulateOneCensus(t *testing.T) {
	// Postulate 1 at test scale: no DFA terminal state falls outside the
	// four archetypes.
	rng := rand.New(rand.NewSource(99))
	for run := 0; run < 30; run++ {
		ratio := partition.PaperRatios[rng.Intn(len(partition.PaperRatios))]
		res, err := push.Run(push.Config{N: 44, Ratio: ratio, Seed: rng.Int63()})
		if err != nil {
			t.Fatal(err)
		}
		if a := Classify(res.Final); a == ArchetypeUnknown {
			t.Errorf("run %d (ratio %v): counterexample to Postulate 1?\n%s",
				run, ratio, res.Final.RenderASCII(22))
		}
	}
}

func TestDownsampleMajority(t *testing.T) {
	g, err := Exemplar(ArchetypeA, 40)
	if err != nil {
		t.Fatal(err)
	}
	coarse := g.Downsample(10)
	if coarse.N() != 10 {
		t.Fatalf("coarse N = %d", coarse.N())
	}
	if got := Classify(coarse); got != ArchetypeA {
		t.Errorf("coarse classification = %v", got)
	}
}

func BenchmarkClassify(b *testing.B) {
	res, err := push.Run(push.Config{N: 100, Ratio: partition.MustRatio(2, 1, 1), Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Classify(res.Final)
	}
}

func BenchmarkReduceToA(b *testing.B) {
	g, err := Exemplar(ArchetypeD, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReduceToA(g); err != nil {
			b.Fatal(err)
		}
	}
}
