package shape

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/partition"
)

// Exemplar constructs a clean representative partition of the requested
// archetype on an n×n grid (Fig 5). Exemplars are used by tests, by the
// reduction benchmarks, and by the shape-atlas example; they are exact
// (no ragged lines).
func Exemplar(a Archetype, n int) (*partition.Grid, error) {
	if n < 12 {
		return nil, fmt.Errorf("shape: exemplar needs n ≥ 12, got %d", n)
	}
	g := partition.NewGrid(n)
	q := n / 4
	switch a {
	case ArchetypeA:
		// Two disjoint rectangles: R bottom-left, S top-right.
		g.FillRect(geom.NewRect(2*q, 0, 4*q, q), partition.R)
		g.FillRect(geom.NewRect(0, 3*q, q, 4*q), partition.S)
	case ArchetypeB:
		// S rectangular; R a six-corner L wrapped around S's left and
		// bottom, enclosing rectangles partially overlapping.
		g.FillRect(geom.NewRect(q, 2*q, 2*q, 3*q), partition.S)
		g.FillRect(geom.NewRect(q, q, 2*q, 2*q), partition.R)   // vertical bar left of S
		g.FillRect(geom.NewRect(2*q, q, 3*q, 3*q), partition.R) // horizontal bar under both
	case ArchetypeC:
		// Interlock: R∪S is one rectangle split by a step; neither R nor
		// S alone is rectangular, each has six corners.
		// Combined rect rows [q,3q) cols [q,3q); step at (2q, 2q).
		g.FillRect(geom.NewRect(q, q, 2*q, 3*q), partition.R)     // top band
		g.FillRect(geom.NewRect(2*q, q, 3*q, 2*q), partition.R)   // lower-left block
		g.FillRect(geom.NewRect(2*q, 2*q, 3*q, 3*q), partition.S) // lower-right block
		// Give S a matching upper tongue so both interlock (6 corners each).
		g.FillRect(geom.NewRect(q, 3*q, 3*q, 3*q+q/2), partition.S)
	case ArchetypeD:
		// Surround: R is a rectangle with a rectangular hole holding S
		// (eight corners for R, four for S).
		g.FillRect(geom.NewRect(q, q, 3*q, 3*q), partition.R)
		g.FillRect(geom.NewRect(q+q/2, q+q/2, 2*q, 2*q), partition.S)
	default:
		return nil, fmt.Errorf("shape: no exemplar for %v", a)
	}
	return g, nil
}
