package shape

import (
	"errors"
	"fmt"

	"repro/internal/partition"
	"repro/internal/push"
)

// ErrCannotTranslate reports that a Theorem 8.1 translation would move the
// combined R∪S shape out of the matrix or onto cells of neither P nor the
// moving shape.
var ErrCannotTranslate = errors.New("shape: translation target not free")

// TranslateCombined implements Theorem 8.1: move the combined R∪S shape by
// (dr, dc) without changing the two shapes' relative positions. The
// vacated cells go to P. The translation is legal only when every target
// cell is inside the matrix and owned by P or by the moving shape itself;
// the Volume of Communication is provably unchanged, which the
// implementation re-checks and reports as an internal error if violated.
func TranslateCombined(g *partition.Grid, dr, dc int) error {
	n := g.N()
	type cell struct {
		i, j int
		p    partition.Proc
	}
	var moving []cell
	movingSet := make(map[int]bool)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := g.At(i, j)
			if p == partition.R || p == partition.S {
				moving = append(moving, cell{i, j, p})
				movingSet[i*n+j] = true
			}
		}
	}
	if len(moving) == 0 {
		return nil
	}
	// Legality: each target in bounds and free (P or part of the moving set).
	for _, c := range moving {
		ti, tj := c.i+dr, c.j+dc
		if ti < 0 || ti >= n || tj < 0 || tj >= n {
			return fmt.Errorf("shape: target (%d,%d) outside matrix: %w", ti, tj, ErrCannotTranslate)
		}
		if !movingSet[ti*n+tj] && g.At(ti, tj) != partition.P {
			return fmt.Errorf("shape: target (%d,%d) not free: %w", ti, tj, ErrCannotTranslate)
		}
	}
	before := g.VoC()
	// Clear then re-place (two passes so overlap between source and
	// target is handled).
	for _, c := range moving {
		g.Set(c.i, c.j, partition.P)
	}
	for _, c := range moving {
		g.Set(c.i+dr, c.j+dc, c.p)
	}
	if g.VoC() != before {
		// Theorem 8.1 guarantees equality; reaching here indicates an
		// implementation bug, so fail loudly rather than return a wrong
		// partition.
		panic(fmt.Sprintf("shape: Theorem 8.1 violated: VoC %d -> %d", before, g.VoC()))
	}
	return nil
}

// ReduceResult describes the outcome of reducing a partition toward
// Archetype A.
type ReduceResult struct {
	// Grid is the reduced partition (a fresh grid; the input is never
	// mutated).
	Grid *partition.Grid
	// From and To are the archetypes before and after.
	From, To Archetype
	// VoCBefore and VoCAfter bracket the change; VoCAfter ≤ VoCBefore.
	VoCBefore, VoCAfter int64
	// PushSteps counts the Push operations the cleanup phase applied.
	PushSteps int
	// Rebuilt is true when the reduction used the Section IX candidate
	// construction (counts-preserving) rather than Push steps alone.
	Rebuilt bool
}

// ReduceToA transforms any partition into an Archetype A partition with
// the same per-processor element counts and a Volume of Communication no
// greater than the input's — the computational content of Theorems
// 8.2–8.4. The strategy mirrors the paper:
//
//  1. Exhaust remaining Push operations in all four directions (this is
//     exactly how Archetype C is dissolved, Theorem 8.3, and it is the
//     program's "beautify" function);
//  2. If the result is still not Archetype A, construct the six candidate
//     shapes of Section IX with the same element counts and adopt the
//     cheapest whose VoC does not exceed the current one (Theorems 8.2
//     and 8.4 guarantee one exists: B unfolds into side-by-side
//     rectangles and D is B after a Theorem 8.1 translation).
func ReduceToA(g *partition.Grid) (*ReduceResult, error) {
	res := &ReduceResult{
		From:      Classify(g),
		VoCBefore: g.VoC(),
	}
	work := g.Clone()

	// Phase 1: beautify — exhaust all remaining pushes in every
	// direction, with the runner's plateau-cycle protection.
	steps, _ := push.Condense(work, push.FullPlan(), nil, 0)
	res.PushSteps = steps

	if Classify(work) != ArchetypeA {
		// Phase 2: candidate construction with identical counts.
		if best, ok := cheapestCandidate(work); ok && best.VoC() <= work.VoC() {
			work = best
			res.Rebuilt = true
		}
	}

	res.Grid = work
	res.To = Classify(work)
	res.VoCAfter = work.VoC()
	if res.VoCAfter > res.VoCBefore {
		return nil, fmt.Errorf("shape: reduction raised VoC %d -> %d", res.VoCBefore, res.VoCAfter)
	}
	return res, nil
}

// cheapestCandidate builds every feasible Section IX candidate with the
// same element counts as g and returns the one with minimum VoC.
func cheapestCandidate(g *partition.Grid) (*partition.Grid, bool) {
	n := g.N()
	ratio, err := ratioFromCounts(g)
	if err != nil {
		return nil, false
	}
	var best *partition.Grid
	for _, s := range partition.AllShapes {
		cand, err := partition.Build(s, n, ratio)
		if err != nil {
			continue
		}
		if !countsMatch(cand, g) {
			continue
		}
		if best == nil || cand.VoC() < best.VoC() {
			best = cand
		}
	}
	return best, best != nil
}

// ratioFromCounts recovers a Ratio whose Counts(n) reproduce g's element
// counts exactly (speeds proportional to counts).
func ratioFromCounts(g *partition.Grid) (partition.Ratio, error) {
	cp := float64(g.Count(partition.P))
	cr := float64(g.Count(partition.R))
	cs := float64(g.Count(partition.S))
	if cs <= 0 || cr <= 0 || cp <= 0 {
		return partition.Ratio{}, errors.New("shape: degenerate counts")
	}
	return partition.NewRatio(cp/cs, cr/cs, 1)
}

func countsMatch(a, b *partition.Grid) bool {
	for _, p := range partition.Procs {
		if a.Count(p) != b.Count(p) {
			return false
		}
	}
	return true
}
