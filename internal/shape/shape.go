// Package shape implements the geometric analysis of Sections VII–VIII:
// the corner taxonomy of partition shapes, classification of condensed
// partitions into the four archetypes the search program discovered
// (Fig 5), and the reduction of Archetypes B, C and D to Archetype A
// (Theorems 8.1–8.4) without increasing the Volume of Communication.
package shape

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/partition"
)

// Archetype is one of the four general partition-shape families the DFA
// search produced (Section VII-C), plus Unknown for arrangements matching
// none — a would-be counterexample to Postulate 1.
type Archetype uint8

const (
	// ArchetypeA — enclosing rectangles of R and S do not overlap and
	// both processors are (asymptotically) rectangular with the minimum
	// four corners. Includes all traditional rectangular partitions.
	ArchetypeA Archetype = iota
	// ArchetypeB — the rectangles partially overlap; one processor is
	// rectangular, the other forms a six-corner "L" around it.
	ArchetypeB
	// ArchetypeC — the rectangles partially overlap and neither
	// processor is rectangular (interlock); each has at least six
	// corners. In every observed instance R∪S is itself rectangular.
	ArchetypeC
	// ArchetypeD — one processor's enclosing rectangle entirely
	// surrounds the other's.
	ArchetypeD
	// ArchetypeUnknown — none of the above; a potential counterexample
	// to the paper's postulate.
	ArchetypeUnknown
)

func (a Archetype) String() string {
	switch a {
	case ArchetypeA:
		return "A"
	case ArchetypeB:
		return "B"
	case ArchetypeC:
		return "C"
	case ArchetypeD:
		return "D"
	case ArchetypeUnknown:
		return "Unknown"
	}
	return fmt.Sprintf("Archetype(%d)", uint8(a))
}

// CornerCount returns the number of corners (interior-angle vertices,
// Section VIII-A) of processor p's region, counted with the 2×2
// vertex-window method: a lattice vertex is a corner when an odd number of
// its four surrounding cells belong to p, and counts twice when exactly
// the two diagonal cells do. A rectangle has four corners; the paper's
// "L" has six; an Archetype D surround has eight.
func CornerCount(g *partition.Grid, p partition.Proc) int {
	n := g.N()
	has := func(i, j int) bool {
		if i < 0 || i >= n || j < 0 || j >= n {
			return false
		}
		return g.At(i, j) == p
	}
	corners := 0
	for i := 0; i <= n; i++ {
		for j := 0; j <= n; j++ {
			a := has(i-1, j-1)
			b := has(i-1, j)
			c := has(i, j-1)
			d := has(i, j)
			switch count4(a, b, c, d) {
			case 1, 3:
				corners++
			case 2:
				if (a && d && !b && !c) || (b && c && !a && !d) {
					corners += 2
				}
			}
		}
	}
	return corners
}

func count4(vals ...bool) int {
	n := 0
	for _, v := range vals {
		if v {
			n++
		}
	}
	return n
}

// Components returns the number of 4-connected components of p's region.
func Components(g *partition.Grid, p partition.Proc) int {
	n := g.N()
	seen := make([]bool, n*n)
	var stack []int
	comps := 0
	for idx := 0; idx < n*n; idx++ {
		if seen[idx] || g.At(idx/n, idx%n) != p {
			continue
		}
		comps++
		stack = append(stack[:0], idx)
		seen[idx] = true
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			i, j := cur/n, cur%n
			for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
				ni, nj := i+d[0], j+d[1]
				if ni < 0 || ni >= n || nj < 0 || nj >= n {
					continue
				}
				nidx := ni*n + nj
				if !seen[nidx] && g.At(ni, nj) == p {
					seen[nidx] = true
					stack = append(stack, nidx)
				}
			}
		}
	}
	return comps
}

// IsAsymptoticallyRectangular reports whether p's region satisfies the
// paper's rectangularity definition (Fig 3): the region fills its
// enclosing rectangle except for at most a single edge row or edge column
// that may be only partially filled. The partial line may contain holes —
// the Volume of Communication cannot distinguish hole positions within
// one line, so the paper's analysis treats them identically.
func IsAsymptoticallyRectangular(g *partition.Grid, p partition.Proc) bool {
	if g.Count(p) == 0 {
		return false
	}
	r := g.EnclosingRect(p)
	// Two sufficient conditions, either of which makes the region
	// indistinguishable from a full rectangle to the Volume of
	// Communication (every row and column of the enclosing rectangle
	// still contains p — that is what makes it the enclosing rectangle):
	//
	//  1. All missing cells lie on the rectangle's boundary ring (the
	//     paper's Fig 3 "single shorter row or column", generalised to
	//     the hole positions VoC cannot observe); or
	//  2. The total slack is below one full edge length — Fig 3's area
	//     budget — wherever the holes sit.
	interiorClean := true
	for i := r.Top + 1; i < r.Bottom-1 && interiorClean; i++ {
		for j := r.Left + 1; j < r.Right-1; j++ {
			if g.At(i, j) != p {
				interiorClean = false
				break
			}
		}
	}
	if interiorClean {
		return true
	}
	slack := r.Area() - g.Count(p)
	maxEdge := r.Width()
	if r.Height() > maxEdge {
		maxEdge = r.Height()
	}
	return slack >= 0 && slack < maxEdge
}

// Analysis is the geometric digest Classify works from.
type Analysis struct {
	RectR, RectS             geom.Rect
	CornersR, CornersS       int
	RectangularR             bool
	RectangularS             bool
	Overlap                  geom.Rect
	CombinedRectangularRS    bool
	ComponentsR, ComponentsS int
}

// Analyze computes the corner/rectangle digest of a partition.
func Analyze(g *partition.Grid) Analysis {
	an := Analysis{
		RectR:        g.EnclosingRect(partition.R),
		RectS:        g.EnclosingRect(partition.S),
		CornersR:     CornerCount(g, partition.R),
		CornersS:     CornerCount(g, partition.S),
		RectangularR: IsAsymptoticallyRectangular(g, partition.R),
		RectangularS: IsAsymptoticallyRectangular(g, partition.S),
		ComponentsR:  Components(g, partition.R),
		ComponentsS:  Components(g, partition.S),
	}
	an.Overlap = an.RectR.Intersect(an.RectS)
	an.CombinedRectangularRS = combinedRectangular(g)
	return an
}

// combinedRectangular reports whether R∪S viewed as one processor is
// asymptotically rectangular (the paper's observation about Archetype C).
func combinedRectangular(g *partition.Grid) bool {
	union := g.EnclosingRect(partition.R).Union(g.EnclosingRect(partition.S))
	if union.IsEmpty() {
		return false
	}
	count := g.Count(partition.R) + g.Count(partition.S)
	slack := union.Area() - count
	if slack < 0 {
		return false
	}
	maxEdge := union.Width()
	if union.Height() > maxEdge {
		maxEdge = union.Height()
	}
	return slack < maxEdge
}

// thinOverlap reports whether the rectangles' intersection is at most one
// row or one column — the raggedness allowance of asymptotically
// rectangular shapes whose partial lines may interleave.
func thinOverlap(ov geom.Rect) bool {
	return ov.IsEmpty() || ov.Width() <= 1 || ov.Height() <= 1
}

// CoarseBoxes is the default downsampling resolution Classify falls back
// to, mirroring the paper's 1/100-granularity presentation of N=1000
// partitions (Fig 7).
const CoarseBoxes = 25

// Classify maps a condensed partition onto the paper's archetypes.
//
// The exact-geometry classification runs first. Condensed partitions can
// carry isolated stray cells in rows/columns their processor already
// occupies — arrangements the Volume of Communication cannot distinguish
// from the clean shape and the Push operation therefore has no gradient to
// remove. When the exact pass reports Unknown on a grid large enough to
// downsample, the partition is re-classified at the paper's coarse
// majority granularity, exactly how the paper's own figures present (and
// the authors eyeballed) their terminal states.
func Classify(g *partition.Grid) Archetype {
	a := ClassifyAnalysis(Analyze(g))
	if a != ArchetypeUnknown {
		return a
	}
	boxes := CoarseBoxes
	if g.N()/2 < boxes {
		boxes = g.N() / 2
	}
	if boxes >= 10 {
		coarse := g.Downsample(boxes)
		return ClassifyAnalysis(Analyze(coarse))
	}
	return a
}

// ClassifyExact runs only the exact-geometry classification with no
// coarse fallback.
func ClassifyExact(g *partition.Grid) Archetype {
	return ClassifyAnalysis(Analyze(g))
}

// ClassifyAnalysis classifies a precomputed Analysis.
func ClassifyAnalysis(an Analysis) Archetype {
	if an.RectR.IsEmpty() || an.RectS.IsEmpty() {
		return ArchetypeUnknown
	}
	if thinOverlap(an.Overlap) {
		// No (material) overlap of enclosing rectangles.
		if an.RectangularR && an.RectangularS {
			return ArchetypeA
		}
		return ArchetypeUnknown
	}
	if an.RectangularR && an.RectangularS {
		// Overlapping rectangles of two cell-disjoint rectangular regions
		// can only come from ragged partial lines; geometrically this is
		// still Archetype A.
		return ArchetypeA
	}
	// One enclosing rectangle containing the other distinguishes the
	// "wrapped" shapes: strictly inside on all four sides is the closed
	// surround of Archetype D (the outer processor needs all eight
	// corners); touching the outer boundary leaves the wrap open — the
	// six-corner "L" of Archetype B when the inner processor is
	// rectangular.
	if inner, outer, ok := containment(an); ok {
		if strictlyInside(outerRect(an, inner), outerRect(an, outer)) {
			return ArchetypeD
		}
		if innerRectangular(an, inner) {
			return ArchetypeB
		}
		return ArchetypeC
	}
	if an.RectangularR != an.RectangularS {
		return ArchetypeB
	}
	return ArchetypeC
}

// containment reports which processor's enclosing rectangle is contained
// in the other's ("inner", "outer").
func containment(an Analysis) (inner, outer partition.Proc, ok bool) {
	switch {
	case an.RectR.ContainsRect(an.RectS):
		return partition.S, partition.R, true
	case an.RectS.ContainsRect(an.RectR):
		return partition.R, partition.S, true
	}
	return 0, 0, false
}

func outerRect(an Analysis, outer partition.Proc) geom.Rect {
	if outer == partition.R {
		return an.RectR
	}
	return an.RectS
}

func innerRectangular(an Analysis, inner partition.Proc) bool {
	if inner == partition.R {
		return an.RectangularR
	}
	return an.RectangularS
}

// strictlyInside reports whether the inner rectangle touches none of the
// outer rectangle's four edges.
func strictlyInside(inner, outer geom.Rect) bool {
	return inner.Top > outer.Top && inner.Bottom < outer.Bottom &&
		inner.Left > outer.Left && inner.Right < outer.Right
}
