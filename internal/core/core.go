// Package core composes the paper's full pipeline — the primary
// contribution as a single orchestrated study:
//
//  1. run the Push-search DFA from many random start states (Section VI),
//  2. classify every terminal state into the four archetypes and check
//     Postulate 1 (Section VII),
//  3. reduce non-A terminal states to Archetype A (Section VIII),
//  4. build the six candidate canonical shapes and pick the optimum for
//     each MMM algorithm under the requested topology (Sections IX–X).
//
// The individual pieces live in internal/push, internal/shape,
// internal/partition, internal/model and internal/experiment; core wires
// them together the way the paper's methodology does, and is what the
// command-line tools drive.
package core

import (
	"context"
	"fmt"
	"io"

	"repro/internal/experiment"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/push"
	"repro/internal/shape"
)

// StudyConfig parameterises a full study of one ratio.
type StudyConfig struct {
	// N is the matrix dimension for the DFA runs and candidate builds.
	N int
	// Ratio is the processor speed ratio.
	Ratio partition.Ratio
	// Runs is the number of DFA runs (the paper used ~10,000 per ratio).
	Runs int
	// Seed drives all randomisation.
	Seed int64
	// Topology for the Section X comparison.
	Topology model.Topology
	// Journal, when set, checkpoints the census phase to this JSONL file
	// so an interrupted study can resume. Resume replays a prior journal
	// before running the remaining work; the resumed study is bit-identical
	// to an uninterrupted one.
	Journal string
	Resume  bool
}

// Study is the outcome of the full pipeline for one ratio.
type Study struct {
	Config StudyConfig
	// Archetypes histograms the DFA terminal states.
	Archetypes map[shape.Archetype]int
	// Counterexamples counts terminal states outside A–D (Postulate 1
	// predicts zero).
	Counterexamples int
	// MeanVoCDrop is the average fractional VoC reduction of the runs.
	MeanVoCDrop float64
	// BestTerminalVoC is the lowest VoC any DFA run reached.
	BestTerminalVoC int64
	// ReducedVoC is the VoC of the best terminal state after the
	// Section VIII reduction to Archetype A.
	ReducedVoC int64
	// Optimal maps each MMM algorithm to the winning candidate shape.
	Optimal map[model.Algorithm]partition.Shape
	// CandidateVoC lists each candidate's VoC (−1 when infeasible).
	CandidateVoC map[partition.Shape]int64
}

// Run executes the full pipeline.
func Run(cfg StudyConfig) (*Study, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cooperative cancellation: the census, the
// best-terminal re-run and the candidate sweeps all stop promptly when
// ctx is cancelled, returning the context's error.
func RunContext(ctx context.Context, cfg StudyConfig) (*Study, error) {
	if cfg.N < 10 {
		return nil, fmt.Errorf("core: N must be ≥ 10, got %d", cfg.N)
	}
	if cfg.Runs <= 0 {
		return nil, fmt.Errorf("core: Runs must be positive")
	}
	if err := cfg.Ratio.Validate(); err != nil {
		return nil, err
	}
	st := &Study{
		Config:       cfg,
		Archetypes:   make(map[shape.Archetype]int),
		Optimal:      make(map[model.Algorithm]partition.Shape),
		CandidateVoC: make(map[partition.Shape]int64),
	}

	// Phase 1+2: DFA census.
	rows, err := experiment.CensusContext(ctx, experiment.CensusConfig{
		N:            cfg.N,
		RunsPerRatio: cfg.Runs,
		Ratios:       []partition.Ratio{cfg.Ratio},
		Seed:         cfg.Seed,
		Beautify:     true,
		Journal:      cfg.Journal,
		Resume:       cfg.Resume,
	})
	if err != nil {
		return nil, err
	}
	st.Archetypes = rows[0].Counts
	st.Counterexamples = st.Archetypes[shape.ArchetypeUnknown]
	st.MeanVoCDrop = rows[0].MeanVoCDrop

	// Phase 3: reduce the best terminal state to Archetype A. Re-run the
	// single best seed (census is deterministic in cfg.Seed).
	best, err := bestTerminal(ctx, cfg)
	if err != nil {
		return nil, err
	}
	st.BestTerminalVoC = best.VoC()
	red, err := shape.ReduceToA(best)
	if err != nil {
		return nil, err
	}
	st.ReducedVoC = red.VoCAfter

	// Phase 4: candidate comparison per algorithm.
	m := model.DefaultMachine(cfg.Ratio)
	m.Topology = cfg.Topology
	for _, s := range partition.AllShapes {
		g, err := partition.Build(s, cfg.N, cfg.Ratio)
		if err != nil {
			st.CandidateVoC[s] = -1
			continue
		}
		st.CandidateVoC[s] = g.VoC()
	}
	for _, a := range model.AllAlgorithms {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: study interrupted: %w", err)
		}
		bestShape := partition.Shape(0)
		bestTotal := -1.0
		for _, s := range partition.AllShapes {
			g, err := partition.Build(s, cfg.N, cfg.Ratio)
			if err != nil {
				continue
			}
			total := model.EvaluateGrid(a, m, g).Total
			if bestTotal < 0 || total < bestTotal {
				bestTotal = total
				bestShape = s
			}
		}
		if bestTotal < 0 {
			return nil, fmt.Errorf("core: no feasible candidate for %v", cfg.Ratio)
		}
		st.Optimal[a] = bestShape
	}
	return st, nil
}

// bestTerminal re-runs the census seeds and returns the terminal state
// with the lowest VoC.
func bestTerminal(ctx context.Context, cfg StudyConfig) (*partition.Grid, error) {
	var best *partition.Grid
	for run := 0; run < cfg.Runs; run++ {
		res, err := push.RunContext(ctx, push.Config{
			N:        cfg.N,
			Ratio:    cfg.Ratio,
			Seed:     cfg.Seed + int64(run),
			Beautify: true,
		})
		if err != nil {
			return nil, err
		}
		if best == nil || res.Final.VoC() < best.VoC() {
			best = res.Final
		}
	}
	return best, nil
}

// Write renders the study as human-readable text.
func (st *Study) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Study of ratio %s (N=%d, %d runs)\n",
		st.Config.Ratio, st.Config.N, st.Config.Runs); err != nil {
		return err
	}
	fmt.Fprintf(w, "  archetypes: A=%d B=%d C=%d D=%d other=%d\n",
		st.Archetypes[shape.ArchetypeA], st.Archetypes[shape.ArchetypeB],
		st.Archetypes[shape.ArchetypeC], st.Archetypes[shape.ArchetypeD],
		st.Counterexamples)
	fmt.Fprintf(w, "  mean VoC reduction: %.1f%%\n", 100*st.MeanVoCDrop)
	fmt.Fprintf(w, "  best terminal VoC: %d; after reduction to A: %d\n",
		st.BestTerminalVoC, st.ReducedVoC)
	fmt.Fprintf(w, "  candidate VoC (%s topology):\n", st.Config.Topology)
	for _, s := range partition.AllShapes {
		v := st.CandidateVoC[s]
		if v < 0 {
			fmt.Fprintf(w, "    %-22s infeasible\n", s)
			continue
		}
		fmt.Fprintf(w, "    %-22s %d\n", s, v)
	}
	fmt.Fprintf(w, "  optimal shape per algorithm:\n")
	for _, a := range model.AllAlgorithms {
		fmt.Fprintf(w, "    %-4s %s\n", a, st.Optimal[a])
	}
	return nil
}
