package core

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/shape"
)

func TestRunStudy(t *testing.T) {
	st, err := Run(StudyConfig{
		N:     36,
		Ratio: partition.MustRatio(5, 2, 1),
		Runs:  5,
		Seed:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range st.Archetypes {
		total += c
	}
	if total != 5 {
		t.Errorf("classified %d of 5 runs", total)
	}
	if st.Counterexamples != 0 {
		t.Errorf("postulate violated %d times", st.Counterexamples)
	}
	if st.ReducedVoC > st.BestTerminalVoC {
		t.Errorf("reduction raised VoC: %d -> %d", st.BestTerminalVoC, st.ReducedVoC)
	}
	if st.MeanVoCDrop <= 0 {
		t.Error("expected VoC reduction")
	}
	for _, a := range model.AllAlgorithms {
		if _, ok := st.Optimal[a]; !ok {
			t.Errorf("no optimum for %v", a)
		}
	}
	// The candidate VoCs must include all six shapes (feasible or not).
	if len(st.CandidateVoC) != partition.NumShapes {
		t.Errorf("candidate VoC entries = %d", len(st.CandidateVoC))
	}
	var sb strings.Builder
	if err := st.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Study of ratio 5:2:1", "archetypes:", "optimal shape per algorithm"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunStudyValidation(t *testing.T) {
	if _, err := Run(StudyConfig{N: 2, Ratio: partition.MustRatio(2, 1, 1), Runs: 1}); err == nil {
		t.Error("tiny N should error")
	}
	if _, err := Run(StudyConfig{N: 30, Ratio: partition.MustRatio(2, 1, 1), Runs: 0}); err == nil {
		t.Error("zero runs should error")
	}
	if _, err := Run(StudyConfig{N: 30, Ratio: partition.Ratio{}, Runs: 1}); err == nil {
		t.Error("invalid ratio should error")
	}
}

func TestStudyHighHeterogeneityOptimum(t *testing.T) {
	st, err := Run(StudyConfig{
		N:     60,
		Ratio: partition.MustRatio(20, 1, 1),
		Runs:  2,
		Seed:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Optimal[model.SCB] != partition.SquareCorner {
		t.Errorf("SCB optimum at 20:1:1 = %v, want Square-Corner", st.Optimal[model.SCB])
	}
	// Bulk overlap: square-corner should win at any feasible ratio per
	// the two-processor intuition carried over.
	if st.Optimal[model.SCO] != partition.SquareCorner {
		t.Logf("note: SCO optimum = %v (square-corner expected at high heterogeneity)", st.Optimal[model.SCO])
	}
	if st.Archetypes[shape.ArchetypeUnknown] != 0 {
		t.Error("postulate violated")
	}
}

func TestStudyStarTopology(t *testing.T) {
	st, err := Run(StudyConfig{
		N:        36,
		Ratio:    partition.MustRatio(4, 2, 1),
		Runs:     3,
		Seed:     5,
		Topology: model.Star,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Config.Topology != model.Star {
		t.Error("topology lost")
	}
	var sb strings.Builder
	if err := st.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "star") {
		t.Errorf("report should name the topology:\n%s", sb.String())
	}
}
