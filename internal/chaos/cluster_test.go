package chaos_test

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/atlas"
	"repro/internal/chaos"
	"repro/internal/model"
	serveimpl "repro/internal/serve"
	wire "repro/serve"
)

// These tests are the chaos suite: three REAL pland servers (full
// handler stack — admission gate, deadline propagation, cache, breaker)
// each behind its own fault-injection proxy, driven by the replica-pool
// client. The invariants under test are the ones a paging rotation
// cares about:
//
//   - availability: with one replica partitioned away and another
//     straggling, every client request still completes within its
//     deadline, and the vast majority at full (non-degraded) quality;
//   - correctness: a replica whose responses are corrupted in flight
//     never gets a plan accepted — the client's independent VoC
//     re-verification catches every tampered payload;
//   - failover: hard connection resets are retried onto healthy
//     replicas without surfacing to the caller.

// cluster is three pland replicas, each reachable only through its
// chaos proxy.
type cluster struct {
	impls   []*serveimpl.Server
	proxies []*chaos.Proxy
}

// startCluster boots len(faults) real servers on loopback TCP and wires
// a chaos proxy with faults[i] in front of server i.
func startCluster(t *testing.T, faults []chaos.Faults) *cluster {
	return startClusterWith(t, faults, nil)
}

// startClusterWith is startCluster with a hook to adjust each server's
// config (e.g. to mount a shared shape atlas) before boot.
func startClusterWith(t *testing.T, faults []chaos.Faults, mut func(*serveimpl.Config)) *cluster {
	t.Helper()
	cl := &cluster{}
	for i, f := range faults {
		cfg := serveimpl.Config{
			DefaultTimeout: time.Second,
			MaxTimeout:     5 * time.Second,
			CacheTTL:       time.Minute,
			SearchSeed:     int64(i + 1),
		}
		if mut != nil {
			mut(&cfg)
		}
		impl, err := serveimpl.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: impl.Handler()}
		go hs.Serve(ln)
		t.Cleanup(func() { hs.Close() })

		proxy, err := chaos.New("127.0.0.1:0", ln.Addr().String(), f, int64(1000+i))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { proxy.Close() })
		cl.impls = append(cl.impls, impl)
		cl.proxies = append(cl.proxies, proxy)
	}
	return cl
}

func (cl *cluster) urls() []string {
	urls := make([]string, len(cl.proxies))
	for i, p := range cl.proxies {
		urls[i] = p.URL()
	}
	return urls
}

// oneShotTransport gives every request its own connection, so each
// request rolls the proxy's per-connection fault dice independently.
func oneShotTransport() *http.Client {
	return &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
}

// chaosPlanReq cycles scenarios so requests exercise the live search
// path, not just the cache.
func chaosPlanReq(i int) wire.PlanRequest {
	ns := []int{24, 28, 32, 36}
	return wire.PlanRequest{N: ns[i%len(ns)], Ratio: "3:1:1", Algorithm: "SCB"}
}

// TestChaosClusterPartitionAndStraggler: replica 0 is blackholed (a
// network partition: connections open, bytes vanish) and replica 1
// straggles 40ms on every response. Availability invariant: every
// request completes well within its deadline, and at least 80% of
// responses are full-quality.
func TestChaosClusterPartitionAndStraggler(t *testing.T) {
	cl := startCluster(t, []chaos.Faults{
		{Blackhole: true},
		{Latency: 40 * time.Millisecond},
		{},
	})
	client, err := wire.NewPool(cl.urls(), wire.ClientConfig{
		Timeout:           2 * time.Second,
		Retry:             wire.RetryPolicy{MaxAttempts: 4, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
		Hedge:             wire.HedgePolicy{Delay: 60 * time.Millisecond, MaxHedges: 1},
		RetryBudget:       1000,
		RetryRefillPerSec: 1000,
		ProbeInterval:     25 * time.Millisecond,
		EjectThreshold:    3,
		EjectCooldown:     300 * time.Millisecond,
		HTTPClient:        oneShotTransport(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const calls = 40
	degraded := 0
	for i := 0; i < calls; i++ {
		start := time.Now()
		resp, err := client.Plan(context.Background(), chaosPlanReq(i))
		elapsed := time.Since(start)
		if err != nil {
			t.Fatalf("request %d failed after %v: %v — one dead replica must not cost availability", i, elapsed, err)
		}
		if elapsed >= 2*time.Second {
			t.Fatalf("request %d took %v, deadline was 2s", i, elapsed)
		}
		if resp.Degraded {
			degraded++
			if cause := resp.DegradedCause(); cause == wire.DegradedNone {
				t.Fatalf("request %d: degraded response with no cause", i)
			}
		}
	}
	if degraded > calls/5 {
		t.Fatalf("%d/%d responses degraded, budget is 20%%", degraded, calls)
	}
	if client.Ejections() == 0 {
		t.Fatal("blackholed replica was never ejected")
	}
	if got := cl.proxies[0].Stats().Blackholed; got == 0 {
		t.Fatal("blackhole fault never exercised — test proves nothing")
	}
	t.Logf("partition+straggler: %d calls, %d degraded, %d ejections, %d hedges",
		calls, degraded, client.Ejections(), client.Hedges())
}

// TestChaosClusterCorruption: every response from replica 0 has its
// "voc" digits rotated in flight — valid JSON, valid framing, wrong
// answer. Correctness invariant: zero corrupt plans accepted, and the
// client's rejection count exactly matches the proxy's corruption
// count (every tampered payload was caught, none slipped through).
func TestChaosClusterCorruption(t *testing.T) {
	cl := startCluster(t, []chaos.Faults{
		{CorruptProb: 1.0},
		{},
		{},
	})
	client, err := wire.NewPool(cl.urls(), wire.ClientConfig{
		Timeout:           2 * time.Second,
		Retry:             wire.RetryPolicy{MaxAttempts: 4, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
		RetryBudget:       1000,
		RetryRefillPerSec: 1000,
		ProbeInterval:     -1, // live rejections alone must evict the liar
		EjectThreshold:    3,
		EjectCooldown:     time.Hour,
		HTTPClient:        oneShotTransport(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const calls = 30
	for i := 0; i < calls; i++ {
		req := chaosPlanReq(i)
		resp, err := client.Plan(context.Background(), req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		// Re-verify what the client accepted, independently: the plan's
		// VoC must match its own decoded grid and the requested scenario.
		if verr := wire.VerifyPlanResponse(req, resp); verr != nil {
			t.Fatalf("request %d: client ACCEPTED a corrupt plan: %v", i, verr)
		}
	}
	rejected := client.CorruptRejected()
	corrupted := cl.proxies[0].Stats().Corrupted
	if corrupted == 0 {
		t.Fatal("corruption fault never fired — test proves nothing")
	}
	if rejected != corrupted {
		t.Fatalf("proxy corrupted %d responses, client rejected %d — every tampered payload must be caught", corrupted, rejected)
	}
	t.Logf("corruption: %d calls, %d tampered payloads, all rejected", calls, corrupted)
}

// TestChaosClusterResets: replica 0 RSTs every connection after reading
// a little. Failover invariant: the caller never sees it.
func TestChaosClusterResets(t *testing.T) {
	cl := startCluster(t, []chaos.Faults{
		{ResetProb: 1.0},
		{},
		{},
	})
	client, err := wire.NewPool(cl.urls(), wire.ClientConfig{
		Timeout:           2 * time.Second,
		Retry:             wire.RetryPolicy{MaxAttempts: 4, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
		RetryBudget:       1000,
		RetryRefillPerSec: 1000,
		ProbeInterval:     -1,
		EjectThreshold:    3,
		EjectCooldown:     time.Hour,
		HTTPClient:        oneShotTransport(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	for i := 0; i < 20; i++ {
		if _, err := client.Plan(context.Background(), chaosPlanReq(i)); err != nil {
			t.Fatalf("request %d: %v — resets must be retried onto healthy replicas", i, err)
		}
	}
	if cl.proxies[0].Stats().Resets == 0 {
		t.Fatal("reset fault never exercised — test proves nothing")
	}
}

// TestChaosClusterRecovery: a replica is blackholed mid-run, gets
// ejected, the partition heals, and readiness probes bring it back —
// with traffic flowing the whole time.
func TestChaosClusterRecovery(t *testing.T) {
	cl := startCluster(t, []chaos.Faults{
		{},
		{},
		{},
	})
	client, err := wire.NewPool(cl.urls(), wire.ClientConfig{
		Timeout:           2 * time.Second,
		Retry:             wire.RetryPolicy{MaxAttempts: 4, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
		Hedge:             wire.HedgePolicy{Delay: 60 * time.Millisecond, MaxHedges: 1},
		RetryBudget:       1000,
		RetryRefillPerSec: 1000,
		ProbeInterval:     20 * time.Millisecond,
		EjectThreshold:    2,
		EjectCooldown:     50 * time.Millisecond,
		HTTPClient:        oneShotTransport(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	load := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := client.Plan(context.Background(), chaosPlanReq(i)); err != nil {
				t.Fatalf("request %d: %v", i, err)
			}
		}
	}
	load(5) // warm EWMAs against the healthy cluster

	// Partition replica 0.
	cl.proxies[0].SetFaults(chaos.Faults{Blackhole: true})
	waitFor(t, 3*time.Second, func() bool {
		return client.Replicas()[0].State == wire.ReplicaEjected
	}, "partitioned replica never ejected")
	load(5)

	// Heal. Probes must walk it back in: cooldown → probation → active.
	cl.proxies[0].SetFaults(chaos.Faults{})
	waitFor(t, 3*time.Second, func() bool {
		return client.Replicas()[0].State == wire.ReplicaActive
	}, "healed replica never re-admitted")
	load(5)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}

// TestChaosClusterTrickleHedge: a slow-trickle replica (bytes dribble
// out 64 at a time) must lose to a hedge against a fast replica, not
// stall the caller.
func TestChaosClusterTrickleHedge(t *testing.T) {
	cl := startCluster(t, []chaos.Faults{
		{TrickleBytes: 64, TrickleEvery: 15 * time.Millisecond},
		{},
	})
	client, err := wire.NewPool(cl.urls(), wire.ClientConfig{
		Timeout:       5 * time.Second,
		Retry:         wire.RetryPolicy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
		Hedge:         wire.HedgePolicy{Delay: 50 * time.Millisecond, MaxHedges: 1},
		RetryBudget:   1000,
		ProbeInterval: -1,
		HTTPClient:    oneShotTransport(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	for i := 0; i < 6; i++ {
		start := time.Now()
		if _, err := client.Plan(context.Background(), chaosPlanReq(i)); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if elapsed := time.Since(start); elapsed > 3*time.Second {
			t.Fatalf("request %d took %v with a hedge available", i, elapsed)
		}
	}
}

// TestChaosClusterBatch: end-to-end PlanBatch against three REAL pland
// replicas sharing one shape atlas, with replica 0 straggling 20ms. The
// batch mixes on-atlas hits, off-atlas searches, and one invalid item;
// the client must shard it across the pool, pass through the per-item
// 400 without losing the rest, and hand back verified plans in request
// order with the atlas tier actually exercised.
func TestChaosClusterBatch(t *testing.T) {
	g, err := atlas.NewGrid(2, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := atlas.Build(context.Background(), atlas.BuildConfig{
		Algorithm: model.SCB,
		Topology:  model.FullyConnected,
		N:         24,
		Grid:      g,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := startClusterWith(t,
		[]chaos.Faults{{Latency: 20 * time.Millisecond}, {}, {}},
		func(cfg *serveimpl.Config) { cfg.Atlas = shared })
	client, err := wire.NewPool(cl.urls(), wire.ClientConfig{
		Timeout:       5 * time.Second,
		Retry:         wire.RetryPolicy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
		RetryBudget:   1000,
		ProbeInterval: -1,
		HTTPClient:    oneShotTransport(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	items := []wire.PlanRequest{
		{N: 24, Ratio: "2.5:1.5:1", Algorithm: "SCB"},  // atlas hit
		{N: 32, Ratio: "3:1:1", Algorithm: "SCB"},      // off-atlas: searched
		{N: 24, Ratio: "3:2:1", Algorithm: "SCB"},      // atlas hit
		{N: 24, Ratio: "0:0:0", Algorithm: "SCB"},      // invalid: per-item 400
		{N: 24, Ratio: "2.51:1.5:1", Algorithm: "SCB"}, // off-lattice: searched
		{N: 24, Ratio: "4:3:1", Algorithm: "SCB"},      // atlas hit
	}
	resp, err := client.PlanBatch(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Succeeded != 5 || resp.Failed != 1 {
		t.Fatalf("succeeded/failed = %d/%d, want 5/1: %+v", resp.Succeeded, resp.Failed, resp.Items)
	}
	atlasAnswers := 0
	for i, it := range resp.Items {
		if it.Index != i {
			t.Fatalf("item %d carries index %d, want request order", i, it.Index)
		}
		if i == 3 {
			if it.Status != http.StatusBadRequest || it.Error == "" {
				t.Fatalf("invalid item = %+v, want a per-item 400", it)
			}
			continue
		}
		pr, err := it.Plan()
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if err := pr.Plan.Validate(); err != nil {
			t.Fatalf("item %d plan invalid: %v", i, err)
		}
		if pr.Source == wire.SourceAtlas {
			atlasAnswers++
		}
	}
	if atlasAnswers != 3 {
		t.Fatalf("atlas answered %d items, want 3", atlasAnswers)
	}

	// The pool must have spread the shards: 6 items over 3 replicas is
	// one batch request each, visible in the servers' own counters.
	batchReqs, batchItems, atlasHits := int64(0), int64(0), int64(0)
	for _, impl := range cl.impls {
		st := impl.Stats()
		batchReqs += st.BatchRequests
		batchItems += st.BatchItems
		atlasHits += st.AtlasHits
	}
	if batchReqs != 3 || batchItems != 6 {
		t.Fatalf("servers saw %d batch requests / %d items, want 3/6 (one shard per replica)", batchReqs, batchItems)
	}
	if atlasHits != 3 {
		t.Fatalf("servers counted %d atlas hits, want 3", atlasHits)
	}
}

// TestChaosClusterBitFlip: every response from replica 0 gets three raw
// bit flips in its body — silent corruption that, unlike the voc
// rotation, respects no layer: it may break the JSON, the transfer
// framing, or just a digit. Correctness invariant: whatever the client
// ends up accepting verifies end-to-end; the flipped responses are all
// rejected (as corrupt plans or as transport/decode errors) and
// retried onto honest replicas.
func TestChaosClusterBitFlip(t *testing.T) {
	cl := startCluster(t, []chaos.Faults{
		{BitFlipProb: 1.0, BitFlipBytes: 3},
		{},
		{},
	})
	client, err := wire.NewPool(cl.urls(), wire.ClientConfig{
		Timeout:           2 * time.Second,
		Retry:             wire.RetryPolicy{MaxAttempts: 4, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
		RetryBudget:       1000,
		RetryRefillPerSec: 1000,
		ProbeInterval:     -1, // live rejections alone must evict the liar
		EjectThreshold:    3,
		EjectCooldown:     time.Hour,
		HTTPClient:        oneShotTransport(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const calls = 30
	for i := 0; i < calls; i++ {
		req := chaosPlanReq(i)
		resp, err := client.Plan(context.Background(), req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if verr := wire.VerifyPlanResponse(req, resp); verr != nil {
			t.Fatalf("request %d: client ACCEPTED a bit-flipped plan: %v", i, verr)
		}
	}
	if cl.proxies[0].Stats().BitFlipped == 0 {
		t.Fatal("bit-flip fault never fired — test proves nothing")
	}
	t.Logf("bit-flip: %d calls, %d flipped responses, none accepted",
		calls, cl.proxies[0].Stats().BitFlipped)
}
