package chaos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// upstreamServer starts a plain HTTP upstream returning body for every
// request and a proxy in front of it with the given faults.
func upstreamServer(t *testing.T, body string, f Faults) (*Proxy, *httptest.Server) {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	p, err := New("127.0.0.1:0", ts.Listener.Addr().String(), f, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p, ts
}

// oneShotClient is an HTTP client that opens a fresh connection per
// request, so per-connection faults map 1:1 onto requests.
func oneShotClient(timeout time.Duration) *http.Client {
	return &http.Client{
		Timeout:   timeout,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
}

func get(t *testing.T, c *http.Client, url string) (string, error) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// TestTransparent: the zero fault set forwards requests untouched.
func TestTransparent(t *testing.T) {
	p, _ := upstreamServer(t, `{"ok":true,"voc":12345}`, Faults{})
	body, err := get(t, oneShotClient(2*time.Second), p.URL())
	if err != nil {
		t.Fatal(err)
	}
	if body != `{"ok":true,"voc":12345}` {
		t.Fatalf("body = %q", body)
	}
	st := p.Stats()
	if st.Connections == 0 || st.Corrupted != 0 || st.Resets != 0 || st.Blackholed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestLatency: injected latency delays the response by at least the
// configured amount.
func TestLatency(t *testing.T) {
	const lat = 150 * time.Millisecond
	p, _ := upstreamServer(t, `{}`, Faults{Latency: lat})
	start := time.Now()
	if _, err := get(t, oneShotClient(2*time.Second), p.URL()); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < lat {
		t.Fatalf("request took %v, want ≥ %v", took, lat)
	}
}

// TestBlackhole: a blackholed proxy accepts the connection and never
// answers; the client's deadline is the only way out.
func TestBlackhole(t *testing.T) {
	p, _ := upstreamServer(t, `{}`, Faults{Blackhole: true})
	start := time.Now()
	_, err := get(t, oneShotClient(200*time.Millisecond), p.URL())
	if err == nil {
		t.Fatal("blackholed request succeeded")
	}
	if took := time.Since(start); took < 150*time.Millisecond {
		t.Fatalf("failed after %v, want the client timeout to be the trigger", took)
	}
	if p.Stats().Blackholed == 0 {
		t.Fatal("no blackholed connection counted")
	}
}

// TestReset: ResetProb 1 aborts every connection; the client sees a
// transport error, not a slow timeout.
func TestReset(t *testing.T) {
	p, _ := upstreamServer(t, `{}`, Faults{ResetProb: 1})
	_, err := get(t, oneShotClient(2*time.Second), p.URL())
	if err == nil {
		t.Fatal("reset connection yielded a response")
	}
	if p.Stats().Resets == 0 {
		t.Fatal("no reset counted")
	}
}

// TestCorruptVoC: corruption rotates exactly the digits of "voc" values,
// leaves everything else (framing included) alone, and keeps the JSON
// valid.
func TestCorruptVoC(t *testing.T) {
	orig := `{"plan":{"n":64,"voc":1998,"grid":"AAA1"},"voc":907,"elapsedMs":1.25}`
	p, _ := upstreamServer(t, orig, Faults{CorruptProb: 1})
	body, err := get(t, oneShotClient(2*time.Second), p.URL())
	if err != nil {
		t.Fatal(err)
	}
	want := `{"plan":{"n":64,"voc":2009,"grid":"AAA1"},"voc":118,"elapsedMs":1.25}`
	if body != want {
		t.Fatalf("corrupted body = %q, want %q", body, want)
	}
	if p.Stats().Corrupted != 1 {
		t.Fatalf("Corrupted = %d, want 1", p.Stats().Corrupted)
	}
}

// TestCorruptorStraddlesChunks: the streaming matcher must catch a
// pattern split across arbitrarily small writes.
func TestCorruptorStraddlesChunks(t *testing.T) {
	input := []byte(`xx"voc":949,"a":1,"voc":10`)
	var c vocCorruptor
	got := make([]byte, 0, len(input))
	for i := range input { // one byte at a time: worst-case straddling
		chunk := []byte{input[i]}
		c.corrupt(chunk)
		got = append(got, chunk...)
	}
	want := `xx"voc":150,"a":1,"voc":21`
	if string(got) != want {
		t.Fatalf("corrupted = %q, want %q", got, want)
	}
}

// TestCorruptorNeverLeadingZero: every rotated leading digit stays
// non-zero so the JSON number remains valid.
func TestCorruptorNeverLeadingZero(t *testing.T) {
	for d := byte('0'); d <= '9'; d++ {
		in := []byte(fmt.Sprintf(`"voc":%c7`, d))
		var c vocCorruptor
		c.corrupt(in)
		lead := in[len(in)-2]
		if lead == '0' {
			t.Fatalf("leading digit %c rotated to 0", d)
		}
		if lead == d {
			t.Fatalf("leading digit %c unchanged", d)
		}
	}
}

// TestTrickle: a trickled body arrives complete but slowly.
func TestTrickle(t *testing.T) {
	body := strings.Repeat("x", 400)
	p, _ := upstreamServer(t, body, Faults{TrickleBytes: 64, TrickleEvery: 20 * time.Millisecond})
	start := time.Now()
	got, err := get(t, oneShotClient(5*time.Second), p.URL())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, body) {
		t.Fatalf("trickled body truncated: %d bytes", len(got))
	}
	// Headers + 400 body bytes at 64B/20ms: at least ~6 sleeps.
	if took := time.Since(start); took < 80*time.Millisecond {
		t.Fatalf("trickled response arrived in %v, too fast", took)
	}
}

// TestCutMidBody: the connection dies after the configured byte count;
// the client must observe a truncated read, not a clean EOF with a full
// body.
func TestCutMidBody(t *testing.T) {
	body := strings.Repeat("y", 64<<10)
	p, _ := upstreamServer(t, body, Faults{CutAfterBytes: 1024})
	resp, err := oneShotClient(2 * time.Second).Get(p.URL())
	if err == nil {
		b, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil && len(b) >= len(body) {
			t.Fatal("cut connection delivered the full body")
		}
	}
	if p.Stats().Cut == 0 {
		t.Fatal("no cut counted")
	}
}

// TestSetFaultsLive: a proxy healed mid-run starts forwarding again
// without rebinding, and a healthy one can be partitioned live.
func TestSetFaultsLive(t *testing.T) {
	p, _ := upstreamServer(t, `{"voc":1}`, Faults{})
	c := oneShotClient(300 * time.Millisecond)
	if _, err := get(t, c, p.URL()); err != nil {
		t.Fatal(err)
	}
	p.SetFaults(Faults{Blackhole: true})
	if _, err := get(t, c, p.URL()); err == nil {
		t.Fatal("partitioned proxy answered")
	}
	p.SetFaults(Faults{})
	if _, err := get(t, c, p.URL()); err != nil {
		t.Fatalf("healed proxy still failing: %v", err)
	}
}

// TestProxyCloseSeversConnections: Close unblocks clients parked on a
// blackholed connection instead of leaking goroutines.
func TestProxyCloseSeversConnections(t *testing.T) {
	p, _ := upstreamServer(t, `{}`, Faults{Blackhole: true})
	errc := make(chan error, 1)
	go func() {
		_, err := get(t, oneShotClient(10*time.Second), p.URL())
		errc <- err
	}()
	// Wait until the connection is parked in the blackhole.
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().Blackholed == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("blackholed request succeeded after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("client still blocked after proxy Close")
	}
}

// TestDialFailure: a proxy whose upstream is gone drops the connection;
// the client sees an error rather than a hang.
func TestDialFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	p, err := New("127.0.0.1:0", dead, Faults{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, p.URL(), nil)
	if _, err := oneShotClient(2 * time.Second).Do(req); err == nil {
		t.Fatal("proxy with dead upstream answered")
	} else if errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("dead upstream surfaced as a hang, want a prompt error")
	}
}

// TestNewValidation: a proxy without an upstream is a configuration
// error, not a runtime surprise.
func TestNewValidation(t *testing.T) {
	if _, err := New("127.0.0.1:0", "", Faults{}, 1); err == nil {
		t.Fatal("New accepted an empty upstream")
	}
}

// TestCorruptKeepsBytesCount: corruption must never change the stream
// length — it would break Content-Length framing.
func TestCorruptKeepsBytesCount(t *testing.T) {
	in := []byte(`{"voc":90210,"pad":"voc"}`)
	orig := len(in)
	var c vocCorruptor
	c.corrupt(in)
	if len(in) != orig {
		t.Fatalf("length changed: %d → %d", orig, len(in))
	}
	if bytes.Contains(in, []byte("90210")) {
		t.Fatal("voc value not rotated")
	}
}

// TestBitFlip: BitFlipProb 1 inverts bits in the response body only —
// the header block reaches the client intact, the body differs from
// the original in exactly BitFlipBytes bytes, and the connection is
// counted.
func TestBitFlip(t *testing.T) {
	orig := strings.Repeat(`{"plan":{"n":64,"voc":1998}}`, 40)
	p, _ := upstreamServer(t, orig, Faults{BitFlipProb: 1, BitFlipBytes: 3})
	body, err := get(t, oneShotClient(2*time.Second), p.URL())
	if err != nil {
		// A flip may land on chunked-framing bytes and abort the read;
		// that is still a detected failure, not silent corruption.
		if p.Stats().BitFlipped == 0 {
			t.Fatalf("request failed (%v) but no flip was counted", err)
		}
		return
	}
	if len(body) != len(orig) {
		t.Fatalf("body length %d, want %d", len(body), len(orig))
	}
	diff := 0
	for i := range body {
		if body[i] != orig[i] {
			diff++
		}
	}
	if diff != 3 {
		t.Fatalf("%d bytes differ, want 3", diff)
	}
	if p.Stats().BitFlipped != 1 {
		t.Fatalf("BitFlipped = %d, want 1", p.Stats().BitFlipped)
	}
}

// TestBitFlipperStraddlesChunks: the header terminator must be found
// across arbitrarily small chunks, and no header byte may ever be
// touched.
func TestBitFlipperStraddlesChunks(t *testing.T) {
	header := "HTTP/1.1 200 OK\r\nContent-Length: 300\r\n\r\n"
	body := strings.Repeat("abcdefgh", 40)
	input := []byte(header + body)
	rigged := 0
	f := newBitFlipper(2, func(n int) int { rigged++; return rigged % n })
	got := make([]byte, 0, len(input))
	for i := range input { // one byte at a time: worst-case straddling
		chunk := []byte{input[i]}
		f.corrupt(chunk)
		got = append(got, chunk...)
	}
	if string(got[:len(header)]) != header {
		t.Fatalf("header was modified: %q", got[:len(header)])
	}
	diff := 0
	for i := len(header); i < len(input); i++ {
		if got[i] != input[i] {
			diff++
		}
	}
	if diff != 2 {
		t.Fatalf("%d body bytes flipped, want 2", diff)
	}
}
