// Package chaos implements an in-process fault-injection TCP proxy for
// hardening the planning service against the conditions the paper treats
// as normal: heterogeneous, unreliable peers. A Proxy sits between a
// client and one upstream (a pland replica) and injects, per the active
// Faults:
//
//   - added latency with uniform jitter (a straggling replica);
//   - abrupt connection resets (a flapping peer or middlebox);
//   - blackhole partitions (accept, swallow, never answer — the failure
//     mode that distinguishes a dead peer from a silent one);
//   - response corruption that rotates the digits of `"voc":` values in
//     the upstream's JSON, producing syntactically valid but semantically
//     corrupt plans that only end-to-end re-verification can catch;
//   - slow-trickle response bodies (a congested link);
//   - mid-body connection cuts (a peer dying while answering).
//
// Faults are read live by every forwarding loop, so SetFaults
// re-configures in-flight connections too — a test can partition a
// healthy replica mid-workload and heal it later. The zero Faults value
// is a transparent proxy.
//
// The proxy is used by the chaos test suite (three real pland servers
// behind three proxies) and by cmd/chaosproxy for manual drills.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Faults selects what the proxy injects. The zero value forwards
// traffic untouched.
type Faults struct {
	// Latency is added once per connection before the first response
	// byte is forwarded (with keep-alives disabled this is per-request
	// latency). Jitter adds a uniform random extra in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration

	// ResetProb is the per-connection probability of an abrupt reset:
	// the proxy reads the start of the request and then closes the
	// client side with a zero linger (RST where the platform allows).
	ResetProb float64

	// Blackhole, when set, simulates a network partition: connections
	// are accepted and request bytes swallowed, but nothing is ever
	// forwarded or answered. Existing connections stop forwarding too.
	Blackhole bool

	// CorruptProb is the per-connection probability of corrupting the
	// response stream: every digit of every JSON `"voc":<number>` value
	// is rotated (leading digit never to '0', so the JSON stays valid
	// and the number always changes). Framing — headers, lengths, chunk
	// sizes — is untouched, so the damage reaches the application layer
	// and must be caught there.
	CorruptProb float64

	// BitFlipProb is the per-connection probability of raw bit flips in
	// the response body: BitFlipBytes body bytes (default 1) at
	// scattered offsets past the HTTP header terminator each get one
	// random bit inverted. Unlike the voc rotation this preserves
	// nothing — not JSON validity, not numbers, with chunked framing
	// not even the transfer encoding — modelling genuine silent wire or
	// memory corruption. Whatever the damage parses into, the client's
	// end-to-end re-verification must reject it.
	BitFlipProb  float64
	BitFlipBytes int

	// TrickleBytes > 0 throttles the response stream to TrickleBytes
	// per TrickleEvery (default 10ms) — a slow-trickle body that holds
	// the client's reader hostage without tripping connect timeouts.
	TrickleBytes int
	TrickleEvery time.Duration

	// CutAfterBytes > 0 kills the connection abruptly after that many
	// response bytes have been forwarded — a mid-body cut.
	CutAfterBytes int64
}

// Stats counts injected faults since the proxy started.
type Stats struct {
	// Connections is the number of accepted client connections.
	Connections int64
	// Resets, Blackholed, Corrupted, Cut count connections on which the
	// respective fault was injected. Corrupted counts connections whose
	// stream had at least one digit rotated, which for one-response-per-
	// connection clients equals the number of corrupt responses.
	Resets     int64
	Blackholed int64
	Corrupted  int64
	Cut        int64
	// BitFlipped counts connections on which at least one response body
	// byte had a bit inverted.
	BitFlipped int64
}

// Proxy is a fault-injecting TCP forwarder. Create with New, stop with
// Close. Safe for concurrent use.
type Proxy struct {
	upstream string
	ln       net.Listener

	mu     sync.Mutex
	faults Faults
	rng    *rand.Rand

	closed atomic.Bool
	wg     sync.WaitGroup
	conns  sync.Map // net.Conn → struct{}

	connections atomic.Int64
	resets      atomic.Int64
	blackholed  atomic.Int64
	corrupted   atomic.Int64
	cut         atomic.Int64
	bitFlipped  atomic.Int64
}

// New starts a proxy on addr (use "127.0.0.1:0" for an ephemeral port)
// forwarding to upstream, with the given initial faults. seed drives the
// probabilistic faults deterministically.
func New(addr, upstream string, f Faults, seed int64) (*Proxy, error) {
	if upstream == "" {
		return nil, errors.New("chaos: upstream address required")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	p := &Proxy{
		upstream: upstream,
		ln:       ln,
		faults:   f,
		rng:      rand.New(rand.NewSource(seed)),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL returns "http://<addr>" for HTTP clients.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// SetFaults swaps the active fault set. Forwarding loops read the
// faults live, so a newly-set Blackhole also stalls established
// connections (their next forwarded chunk is swallowed).
func (p *Proxy) SetFaults(f Faults) {
	p.mu.Lock()
	p.faults = f
	p.mu.Unlock()
}

// Faults returns the active fault set.
func (p *Proxy) Faults() Faults {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.faults
}

// Stats snapshots the fault counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Connections: p.connections.Load(),
		Resets:      p.resets.Load(),
		Blackholed:  p.blackholed.Load(),
		Corrupted:   p.corrupted.Load(),
		Cut:         p.cut.Load(),
		BitFlipped:  p.bitFlipped.Load(),
	}
}

// Close stops accepting, severs every open connection, and waits for
// the forwarding goroutines to drain.
func (p *Proxy) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	err := p.ln.Close()
	p.conns.Range(func(k, _ any) bool {
		k.(net.Conn).Close()
		return true
	})
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // Close() shut the listener
		}
		p.connections.Add(1)
		p.wg.Add(1)
		go p.handle(conn)
	}
}

// roll draws one uniform sample (the shared rng needs the proxy lock).
func (p *Proxy) roll() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rng.Float64()
}

// randInt draws one uniform int in [0, n) from the shared rng.
func (p *Proxy) randInt(n int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rng.Intn(n)
}

func (p *Proxy) track(c net.Conn) func() {
	p.conns.Store(c, struct{}{})
	return func() {
		p.conns.Delete(c)
		c.Close()
	}
}

func (p *Proxy) handle(client net.Conn) {
	defer p.wg.Done()
	defer p.track(client)()

	f := p.Faults()

	if f.Blackhole {
		p.blackholed.Add(1)
		// Swallow the request and never answer; the connection stays
		// open until the client gives up or the proxy closes.
		io.Copy(io.Discard, client)
		return
	}
	if f.ResetProb > 0 && p.roll() < f.ResetProb {
		p.resets.Add(1)
		// Read a little so the client is already committed, then slam
		// the door: SetLinger(0) turns Close into an RST on TCP stacks
		// that support it.
		buf := make([]byte, 256)
		client.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		client.Read(buf)
		if tc, ok := client.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		return
	}

	upstream, err := net.DialTimeout("tcp", p.upstream, 5*time.Second)
	if err != nil {
		return
	}
	defer p.track(upstream)()

	corrupt := f.CorruptProb > 0 && p.roll() < f.CorruptProb
	var flipper *bitFlipper
	if f.BitFlipProb > 0 && p.roll() < f.BitFlipProb {
		nb := f.BitFlipBytes
		if nb <= 0 {
			nb = 1
		}
		flipper = newBitFlipper(nb, p.randInt)
	}

	// Client → upstream: verbatim. When it ends (client closed its write
	// side), propagate the half-close so the upstream can finish.
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		io.Copy(upstream, client)
		if tc, ok := upstream.(*net.TCPConn); ok {
			tc.CloseWrite()
		} else {
			upstream.Close()
		}
	}()

	// Upstream → client: through the fault pipeline.
	p.forwardResponse(client, upstream, corrupt, flipper)
}

// forwardResponse copies the upstream's response stream to the client,
// applying latency, corruption, trickle, and cut per the live faults.
func (p *Proxy) forwardResponse(client, upstream net.Conn, corrupt bool, flipper *bitFlipper) {
	var (
		corruptor  vocCorruptor
		didCorrupt bool
		didFlip    bool
		forwarded  int64
		firstByte  = true
		buf        = make([]byte, 32<<10)
	)
	for {
		n, err := upstream.Read(buf)
		if n > 0 {
			f := p.Faults()
			if f.Blackhole {
				// Partition arrived mid-connection: stall forever (until
				// the proxy or a peer closes the connection).
				p.blackholed.Add(1)
				io.Copy(io.Discard, upstream)
				return
			}
			if firstByte {
				firstByte = false
				if d := p.delay(f); d > 0 {
					time.Sleep(d)
				}
			}
			chunk := buf[:n]
			if corrupt {
				if corruptor.corrupt(chunk) > 0 && !didCorrupt {
					didCorrupt = true
					p.corrupted.Add(1)
				}
			}
			if flipper != nil {
				if flipper.corrupt(chunk) > 0 && !didFlip {
					didFlip = true
					p.bitFlipped.Add(1)
				}
			}
			if werr := p.writeChunk(client, chunk, f, &forwarded); werr != nil {
				return
			}
			if f.CutAfterBytes > 0 && forwarded >= f.CutAfterBytes {
				p.cut.Add(1)
				if tc, ok := client.(*net.TCPConn); ok {
					tc.SetLinger(0)
				}
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// writeChunk writes chunk to client, trickling it when configured.
func (p *Proxy) writeChunk(client net.Conn, chunk []byte, f Faults, forwarded *int64) error {
	if f.TrickleBytes <= 0 {
		n, err := client.Write(chunk)
		*forwarded += int64(n)
		return err
	}
	every := f.TrickleEvery
	if every <= 0 {
		every = 10 * time.Millisecond
	}
	for len(chunk) > 0 {
		step := f.TrickleBytes
		if step > len(chunk) {
			step = len(chunk)
		}
		n, err := client.Write(chunk[:step])
		*forwarded += int64(n)
		if err != nil {
			return err
		}
		chunk = chunk[step:]
		if len(chunk) > 0 {
			time.Sleep(every)
		}
	}
	return nil
}

func (p *Proxy) delay(f Faults) time.Duration {
	d := f.Latency
	if f.Jitter > 0 {
		p.mu.Lock()
		d += time.Duration(p.rng.Int63n(int64(f.Jitter)))
		p.mu.Unlock()
	}
	return d
}

// vocCorruptor is a streaming state machine that finds every JSON
// `"voc":<digits>` occurrence in a byte stream — across arbitrary chunk
// boundaries — and rotates the digits of the number. The leading digit
// maps 1→2, …, 8→9, 9→1 (never to '0', which would make the JSON number
// invalid); later digits rotate (d+1) mod 10. Every match therefore
// yields a different, still-parseable number: corruption that survives
// transport and JSON decoding and is only caught by semantic
// re-verification of the plan.
type vocCorruptor struct {
	matched int  // bytes of the pattern matched so far
	inRun   bool // currently rotating a digit run
	first   bool // next digit is the leading digit of the run
}

var vocPattern = []byte(`"voc":`)

// corrupt mutates chunk in place and returns how many bytes it changed.
func (c *vocCorruptor) corrupt(chunk []byte) int {
	changed := 0
	for i, b := range chunk {
		if c.inRun {
			if b >= '0' && b <= '9' {
				chunk[i] = rotateDigit(b, c.first)
				c.first = false
				changed++
				continue
			}
			c.inRun = false
		}
		if b == vocPattern[c.matched] {
			c.matched++
			if c.matched == len(vocPattern) {
				c.matched = 0
				c.inRun = true
				c.first = true
			}
		} else if b == vocPattern[0] {
			c.matched = 1
		} else {
			c.matched = 0
		}
	}
	return changed
}

// bitFlipper inverts single bits at pre-drawn offsets in an HTTP
// response body, streaming across arbitrary chunk boundaries. The
// header block is located by scanning for its \r\n\r\n terminator and
// passed through untouched (a flipped Content-Length would be a
// framing error, not silent corruption); everything after it — JSON,
// chunk-size lines, anything — is fair game. Each flip has a gap drawn
// in [8, 128) body bytes from the previous one, so with the default
// response sizes every flip lands.
type bitFlipper struct {
	inBody  bool
	matched int     // bytes of the \r\n\r\n terminator matched so far
	gaps    []int   // body bytes to skip before each remaining flip
	bits    []uint8 // which bit each remaining flip inverts
}

func newBitFlipper(flips int, randInt func(int) int) *bitFlipper {
	f := &bitFlipper{gaps: make([]int, flips), bits: make([]uint8, flips)}
	for i := range f.gaps {
		f.gaps[i] = 8 + randInt(120)
		f.bits[i] = uint8(randInt(8))
	}
	return f
}

var headerEnd = []byte("\r\n\r\n")

// corrupt mutates chunk in place and returns how many bytes it changed.
func (f *bitFlipper) corrupt(chunk []byte) int {
	changed := 0
	for i, b := range chunk {
		if !f.inBody {
			if b == headerEnd[f.matched] {
				f.matched++
				if f.matched == len(headerEnd) {
					f.inBody = true
				}
			} else if b == '\r' {
				f.matched = 1
			} else {
				f.matched = 0
			}
			continue
		}
		if len(f.gaps) == 0 {
			break
		}
		if f.gaps[0] > 0 {
			f.gaps[0]--
			continue
		}
		chunk[i] ^= 1 << f.bits[0]
		f.gaps = f.gaps[1:]
		f.bits = f.bits[1:]
		changed++
	}
	return changed
}

func rotateDigit(b byte, leading bool) byte {
	if leading {
		// 0→1, 1→2, …, 8→9, 9→1: never '0' in the leading position.
		if b == '9' || b == '0' {
			return '1'
		}
		return b + 1
	}
	return '0' + (b-'0'+1)%10
}
