// Package heteropart is a Go implementation of DeFlumere & Lastovetsky,
// "Searching for the Optimal Data Partitioning Shape for Parallel Matrix
// Matrix Multiplication on 3 Heterogeneous Processors" (HCW/IPDPS
// Workshops 2014).
//
// The library answers the question the paper studies: given three
// processors of relative speeds Pr : Rr : 1, how should the elements of
// the (identically partitioned) matrices A, B, C be assigned to the
// processors so that parallel matrix-matrix multiplication minimises
// communication and execution time — without assuming the assignment must
// be rectangular?
//
// The main entry points are:
//
//   - Search — the paper's computer-aided method (a DFA whose transition
//     function is the Push operation): start from a random arrangement of
//     elements and apply Push operations until no legal Push remains; the
//     result is a candidate optimal shape.
//   - Classify — map any partition onto the paper's four shape archetypes
//     (A–D, Fig 5).
//   - ReduceToA — the Section VIII reductions: transform any partition
//     into an Archetype A partition without increasing the communication
//     volume.
//   - BuildShape — construct the six candidate canonical shapes of
//     Section IX (Square-Corner, Rectangle-Corner, Square-Rectangle,
//     Block-Rectangle, L-Rectangle, Traditional-Rectangle).
//   - Evaluate / Simulate — the five MMM algorithm performance models of
//     Section IV-B (SCB, PCB, SCO, PCO, PIO) and their discrete-event
//     simulation, on fully connected or star topologies.
//   - Optimal — compare the candidates for a scenario and return the
//     cheapest (the Section X methodology).
//   - Multiply — actually run the partitioned multiplication on three
//     goroutine "processors" with real data movement, verifying the
//     numerical result.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of every figure in the paper's evaluation.
package heteropart

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/matrix"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/push"
	"repro/internal/shape"
	"repro/internal/sim"
)

// Ratio is the processing-speed ratio Pr : Rr : Sr with Pr ≥ Rr ≥ Sr.
type Ratio = partition.Ratio

// Ratio constructors and the paper's eleven studied ratios.
var (
	NewRatio    = partition.NewRatio
	MustRatio   = partition.MustRatio
	ParseRatio  = partition.ParseRatio
	PaperRatios = partition.PaperRatios
)

// Partition is a concrete assignment of every matrix element to one of
// the three processors.
type Partition = partition.Grid

// NewPartition returns an n×n partition entirely assigned to the fastest
// processor P.
func NewPartition(n int) *Partition { return partition.NewGrid(n) }

// Proc identifies a processor: P (fastest), R, S (slowest).
type Proc = partition.Proc

// Processor identifiers, in the paper's q-function encoding.
const (
	R = partition.R
	S = partition.S
	P = partition.P
)

// Shape identifies one of the six candidate canonical shapes (Section IX).
type Shape = partition.Shape

// The six candidates (Figs 11 and 12).
const (
	SquareCorner         = partition.SquareCorner
	RectangleCorner      = partition.RectangleCorner
	SquareRectangle      = partition.SquareRectangle
	BlockRectangle       = partition.BlockRectangle
	LRectangle           = partition.LRectangle
	TraditionalRectangle = partition.TraditionalRectangle
)

// AllShapes lists the candidates in paper order.
var AllShapes = partition.AllShapes

// ParseShape parses a canonical shape name ("Square-Corner", ...),
// case-insensitively.
var ParseShape = partition.ParseShape

// ErrInfeasible reports a shape that cannot be formed for a ratio
// (Theorem 9.1).
var ErrInfeasible = partition.ErrInfeasible

// BuildShape constructs the canonical version of a candidate shape.
func BuildShape(s Shape, n int, ratio Ratio) (*Partition, error) {
	return partition.Build(s, n, ratio)
}

// SquareCornerFeasible reports the Theorem 9.1 feasibility condition.
func SquareCornerFeasible(ratio Ratio) bool { return partition.SquareCornerFeasible(ratio) }

// Archetype is one of the paper's four terminal shape families (Fig 5).
type Archetype = shape.Archetype

// The archetypes.
const (
	ArchetypeA       = shape.ArchetypeA
	ArchetypeB       = shape.ArchetypeB
	ArchetypeC       = shape.ArchetypeC
	ArchetypeD       = shape.ArchetypeD
	ArchetypeUnknown = shape.ArchetypeUnknown
)

// Classify maps a partition onto the archetypes.
func Classify(g *Partition) Archetype { return shape.Classify(g) }

// CornerCount returns the number of corners of a processor's region
// (Section VIII-A).
func CornerCount(g *Partition, p Proc) int { return shape.CornerCount(g, p) }

// ReduceToA transforms any partition into an Archetype A partition with
// equal element counts and no higher communication volume (Theorems
// 8.1–8.4).
func ReduceToA(g *Partition) (*shape.ReduceResult, error) { return shape.ReduceToA(g) }

// SearchConfig parameterises the Push search (Section VI). It is the
// runner configuration re-exported.
type SearchConfig = push.Config

// SearchResult is the outcome of a Push search run.
type SearchResult = push.RunResult

// Search runs the paper's DFA: from a random start state, apply Push
// operations (randomised directions, Types 1–6) until a fixed point.
func Search(cfg SearchConfig) (*SearchResult, error) { return push.Run(cfg) }

// Algorithm identifies one of the five MMM algorithms (Section II).
type Algorithm = model.Algorithm

// The five algorithms.
const (
	SCB = model.SCB
	PCB = model.PCB
	SCO = model.SCO
	PCO = model.PCO
	PIO = model.PIO
)

// AllAlgorithms lists them in paper order.
var AllAlgorithms = model.AllAlgorithms

// ParseAlgorithm parses an algorithm name ("SCB", ...).
var ParseAlgorithm = model.ParseAlgorithm

// Topology is the interconnect layout (Section X).
type Topology = model.Topology

// The two studied topologies.
const (
	FullyConnected = model.FullyConnected
	Star           = model.Star
)

// ParseTopology parses a topology name ("fully-connected", "star"); the
// empty string selects FullyConnected.
var ParseTopology = model.ParseTopology

// TopologySpec is the extended topology grammar of the cost-model layer:
// the legacy names plus the per-link classes "2+1[:f]", "3-island[:f]"
// and explicit "links:..." matrices. Apply configures a Machine for it.
type TopologySpec = model.TopologySpec

// ParseTopologySpec parses the extended grammar; errors are typed
// (*model.ConfigError) and never panics.
var ParseTopologySpec = model.ParseTopologySpec

// CostModel prices communication and computation per directed processor
// pair; UniformHockney is the paper's single-link model (bit-for-bit the
// legacy behaviour) and LinkMatrix the per-pair generalisation.
type (
	CostModel      = model.CostModel
	UniformHockney = model.UniformHockney
	LinkMatrix     = model.LinkMatrix
)

// NewUniformCost packages a machine's legacy parameters as an explicit
// cost model.
var NewUniformCost = model.NewUniformCost

// Machine describes the platform: ratio, Hockney network, flop time,
// topology, and optionally a per-link cost model.
type Machine = model.Machine

// DefaultMachine mirrors the paper's Fig 14 platform (1000 MB/s network,
// 8-byte elements).
func DefaultMachine(ratio Ratio) Machine { return model.DefaultMachine(ratio) }

// Breakdown is a modelled execution-time estimate.
type Breakdown = model.Breakdown

// Evaluate models the execution time of an algorithm on a partition
// (Eqs 2–9).
func Evaluate(a Algorithm, m Machine, g *Partition) Breakdown {
	return model.EvaluateGrid(a, m, g)
}

// SimResult is a simulated execution.
type SimResult = sim.Result

// Simulate runs the discrete-event simulation of an algorithm on a
// partition.
func Simulate(a Algorithm, m Machine, g *Partition) (SimResult, error) {
	return sim.Simulate(a, m, g, 0)
}

// Matrix is a dense square float64 matrix.
type Matrix = matrix.Dense

// NewMatrix returns an n×n zero matrix.
func NewMatrix(n int) *Matrix { return matrix.New(n) }

// ExecConfig parameterises a real partitioned multiplication.
type ExecConfig = exec.Config

// ExecStats reports what an execution did (volumes, flops, timings).
type ExecStats = exec.Stats

// Multiply computes C = A·B on three goroutine processors partitioned by
// g, with real data movement and exact volume accounting (barrier
// algorithms SCB/PCB).
func Multiply(cfg ExecConfig, g *Partition, a, b *Matrix) (*Matrix, *ExecStats, error) {
	return exec.Multiply(cfg, g, a, b)
}

// MultiplyPIO computes C = A·B with the Parallel Interleaving Overlap
// pipeline executed for real: pivot rows/columns are exchanged step by
// step over channels while the previous step computes.
func MultiplyPIO(cfg ExecConfig, g *Partition, a, b *Matrix) (*Matrix, *ExecStats, error) {
	return exec.MultiplyPIO(cfg, g, a, b)
}

// Candidate reports one candidate's cost in an Optimal comparison.
type Candidate struct {
	Shape    Shape
	Feasible bool
	// VoC is the communication volume in elements (Eq 1).
	VoC int64
	// Breakdown is the modelled execution time.
	Breakdown Breakdown
}

// Optimal builds all six candidates for the scenario, evaluates the
// requested algorithm on machine m, and returns the cheapest shape with
// the full per-candidate cost list (the Section X methodology).
func Optimal(a Algorithm, m Machine, n int) (Shape, []Candidate, error) {
	if n < 4 {
		return 0, nil, fmt.Errorf("heteropart: n must be ≥ 4, got %d", n)
	}
	var (
		cands []Candidate
		best  = -1
	)
	for _, s := range AllShapes {
		c := Candidate{Shape: s}
		g, err := partition.Build(s, n, m.Ratio)
		if err == nil {
			c.Feasible = true
			c.VoC = g.VoC()
			c.Breakdown = model.EvaluateGrid(a, m, g)
			if best < 0 || c.Breakdown.Total < cands[best].Breakdown.Total {
				best = len(cands)
			}
		}
		cands = append(cands, c)
	}
	if best < 0 {
		return 0, cands, fmt.Errorf("heteropart: no feasible candidate for ratio %v", m.Ratio)
	}
	return cands[best].Shape, cands, nil
}
