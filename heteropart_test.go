package heteropart

import (
	"math/rand"
	"testing"
)

func TestSearchClassifyReducePipeline(t *testing.T) {
	res, err := Search(SearchConfig{N: 40, Ratio: MustRatio(3, 1, 1), Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("search did not converge")
	}
	if res.FinalVoC > res.InitialVoC {
		t.Fatal("search increased VoC")
	}
	arch := Classify(res.Final)
	if arch == ArchetypeUnknown {
		t.Fatalf("terminal state unclassifiable:\n%s", res.Final.RenderASCII(20))
	}
	red, err := ReduceToA(res.Final)
	if err != nil {
		t.Fatal(err)
	}
	if red.To != ArchetypeA {
		t.Fatalf("reduction ended at %v", red.To)
	}
	if red.VoCAfter > red.VoCBefore {
		t.Fatal("reduction increased VoC")
	}
}

func TestOptimalHighHeterogeneityPrefersSquareCorner(t *testing.T) {
	m := DefaultMachine(MustRatio(20, 1, 1))
	best, cands, err := Optimal(SCB, m, 120)
	if err != nil {
		t.Fatal(err)
	}
	if best != SquareCorner {
		t.Errorf("at 20:1:1 SCB best = %v, want Square-Corner", best)
	}
	if len(cands) != len(AllShapes) {
		t.Errorf("candidates = %d", len(cands))
	}
}

func TestOptimalLowHeterogeneityAvoidsSquareCorner(t *testing.T) {
	m := DefaultMachine(MustRatio(2, 2, 1)) // SC infeasible here
	best, cands, err := Optimal(SCB, m, 120)
	if err != nil {
		t.Fatal(err)
	}
	if best == SquareCorner {
		t.Error("Square-Corner must not win when infeasible")
	}
	for _, c := range cands {
		if c.Shape == SquareCorner && c.Feasible {
			t.Error("Square-Corner should be infeasible at 2:2:1")
		}
	}
}

func TestOptimalValidation(t *testing.T) {
	if _, _, err := Optimal(SCB, DefaultMachine(MustRatio(2, 1, 1)), 2); err == nil {
		t.Error("tiny n should error")
	}
}

func TestBuildEvaluateSimulateAgree(t *testing.T) {
	ratio := MustRatio(5, 2, 1)
	m := DefaultMachine(ratio)
	g, err := BuildShape(BlockRectangle, 80, ratio)
	if err != nil {
		t.Fatal(err)
	}
	mod := Evaluate(SCB, m, g)
	s, err := Simulate(SCB, m, g)
	if err != nil {
		t.Fatal(err)
	}
	if rel := (mod.Total - s.TExe) / mod.Total; rel > 1e-9 || rel < -1e-9 {
		t.Errorf("model %g vs sim %g", mod.Total, s.TExe)
	}
}

func TestMultiplyThroughPublicAPI(t *testing.T) {
	const n = 32
	ratio := MustRatio(4, 2, 1)
	g, err := BuildShape(LRectangle, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	a := NewMatrix(n)
	b := NewMatrix(n)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c, stats, err := Multiply(ExecConfig{Machine: DefaultMachine(ratio), Algorithm: SCB}, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalVolume != g.VoC() {
		t.Errorf("volume %d != VoC %d", stats.TotalVolume, g.VoC())
	}
	if c.N() != n {
		t.Error("result dimension")
	}
}

func TestPublicConstantsConsistent(t *testing.T) {
	if len(PaperRatios) != 11 {
		t.Error("paper ratios")
	}
	if len(AllShapes) != 6 {
		t.Error("six candidates")
	}
	if len(AllAlgorithms) != 5 {
		t.Error("five algorithms")
	}
	if a, err := ParseAlgorithm("PIO"); err != nil || a != PIO {
		t.Error("ParseAlgorithm")
	}
	if !SquareCornerFeasible(MustRatio(10, 1, 1)) {
		t.Error("10:1:1 should admit the Square-Corner")
	}
	if CornerCount(mustShape(t, TraditionalRectangle), P) < 4 {
		t.Error("corner count sanity")
	}
}

func mustShape(t *testing.T, s Shape) *Partition {
	t.Helper()
	g, err := BuildShape(s, 60, MustRatio(3, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	return g
}
