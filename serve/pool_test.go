package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// planCorrupt returns a plan whose VoC field disagrees with its own
// grid — valid JSON, a well-formed plan, and a lie. Only independent
// re-verification can tell.
func planCorrupt() PlanResponse {
	resp := planOK()
	p := *resp.Plan
	p.VoC += 7
	resp.Plan = &p
	return resp
}

func testPlanReq() PlanRequest {
	return PlanRequest{N: 40, Ratio: "3:1:1", Algorithm: "SCB"}
}

// replicaByURL finds url's status in a snapshot.
func replicaByURL(t *testing.T, c *Client, url string) ReplicaStatus {
	t.Helper()
	for _, st := range c.Replicas() {
		if st.URL == url {
			return st
		}
	}
	t.Fatalf("replica %s not in pool %+v", url, c.Replicas())
	return ReplicaStatus{}
}

// eventually polls cond until it holds or the deadline passes.
func eventually(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal(msg)
}

// TestNewPoolValidation: an empty pool is a construction error, and
// duplicate URLs collapse to one replica.
func TestNewPoolValidation(t *testing.T) {
	if _, err := NewPool(nil, ClientConfig{}); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("err = %v, want ErrNoReplicas", err)
	}
	c, err := NewPool([]string{"http://a:1", "http://a:1/", "http://b:2"}, ClientConfig{ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := len(c.Replicas()); got != 2 {
		t.Fatalf("pool has %d replicas, want 2 (dedup)", got)
	}
}

// TestPoolFailoverAndEjection: with one replica answering 500 on every
// call, no client call may fail — retries fail over to the healthy
// replica — and the bad replica must be ejected after the consecutive-
// failure threshold.
func TestPoolFailoverAndEjection(t *testing.T) {
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, planOK())
	}))
	defer good.Close()
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusInternalServerError, ErrorBody{Error: "boom"})
	}))
	defer bad.Close()

	c, err := NewPool([]string{bad.URL, good.URL}, ClientConfig{
		ProbeInterval:  -1,
		Timeout:        5 * time.Second,
		Retry:          RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		RetryBudget:    100,
		EjectThreshold: 3,
		EjectCooldown:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 20; i++ {
		if _, err := c.Plan(context.Background(), testPlanReq()); err != nil {
			t.Fatalf("call %d: %v — failover must hide a single bad replica", i, err)
		}
	}
	if st := replicaByURL(t, c, bad.URL); st.State != ReplicaEjected {
		t.Fatalf("bad replica state = %v after 20 calls, want ejected", st.State)
	}
	if c.Ejections() == 0 {
		t.Fatal("Ejections() = 0, want ≥ 1")
	}
	if st := replicaByURL(t, c, good.URL); st.State != ReplicaActive || st.LatencyEWMAMs <= 0 {
		t.Fatalf("good replica status = %+v, want active with a latency sample", st)
	}
}

// TestPoolProbationReadmit: a single flaky replica is ejected, recovers,
// and must be re-admitted by its live probation trial after the cooldown
// (probing disabled, so only live traffic can vouch for it).
func TestPoolProbationReadmit(t *testing.T) {
	var healthy atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			writeJSON(w, http.StatusServiceUnavailable, ErrorBody{Error: "down"})
			return
		}
		writeJSON(w, http.StatusOK, planOK())
	}))
	defer ts.Close()

	c, err := NewPool([]string{ts.URL}, ClientConfig{
		ProbeInterval:  -1,
		Timeout:        time.Second,
		Retry:          RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond},
		EjectThreshold: 2,
		EjectCooldown:  30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 2; i++ {
		if _, err := c.Plan(context.Background(), testPlanReq()); err == nil {
			t.Fatal("sick replica answered")
		}
	}
	if st := c.Replicas()[0]; st.State != ReplicaEjected {
		t.Fatalf("state = %v, want ejected", st.State)
	}

	healthy.Store(true)
	time.Sleep(40 * time.Millisecond) // past the cooldown → probation
	if st := c.Replicas()[0]; st.State != ReplicaProbation {
		t.Fatalf("state = %v after cooldown, want probation", st.State)
	}
	if _, err := c.Plan(context.Background(), testPlanReq()); err != nil {
		t.Fatalf("probation trial: %v", err)
	}
	if st := c.Replicas()[0]; st.State != ReplicaActive || st.ConsecutiveFailures != 0 {
		t.Fatalf("status after successful trial = %+v, want active/0 failures", st)
	}
}

// TestPoolProbationRefail: a probation trial that fails re-ejects
// immediately for a fresh cooldown — no three-strikes grace the second
// time around.
func TestPoolProbationRefail(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusServiceUnavailable, ErrorBody{Error: "still down"})
	}))
	defer ts.Close()

	c, err := NewPool([]string{ts.URL}, ClientConfig{
		ProbeInterval:  -1,
		Timeout:        time.Second,
		Retry:          RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond},
		EjectThreshold: 2,
		EjectCooldown:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 2; i++ {
		c.Plan(context.Background(), testPlanReq())
	}
	ejections := c.Ejections()
	if ejections == 0 {
		t.Fatal("replica not ejected")
	}
	time.Sleep(30 * time.Millisecond)
	c.Plan(context.Background(), testPlanReq()) // failed trial
	if c.Ejections() != ejections+1 {
		t.Fatalf("Ejections() = %d after failed trial, want %d", c.Ejections(), ejections+1)
	}
	if st := c.Replicas()[0]; st.State != ReplicaEjected {
		t.Fatalf("state = %v after failed trial, want re-ejected", st.State)
	}
}

// TestPoolProbeEjectsNotReady: the background prober must eject a
// replica whose /readyz says 503 — before any live request pays for the
// discovery — and re-admit it once it reports ready again.
func TestPoolProbeEjectsNotReady(t *testing.T) {
	var ready atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			http.NotFound(w, r)
			return
		}
		if ready.Load() {
			w.WriteHeader(http.StatusOK)
		} else {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
	}))
	defer ts.Close()

	c, err := NewPool([]string{ts.URL}, ClientConfig{
		ProbeInterval:  5 * time.Millisecond,
		EjectThreshold: 2,
		EjectCooldown:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	eventually(t, 2*time.Second, func() bool {
		return c.Replicas()[0].State == ReplicaEjected
	}, "not-ready replica never ejected by probes")

	ready.Store(true)
	eventually(t, 2*time.Second, func() bool {
		return c.Replicas()[0].State == ReplicaActive
	}, "ready replica never re-admitted by probes")
}

// TestPoolProbeHealthzFallback: a pre-readiness server (404 on /readyz,
// 200 on /healthz) must not be ejected — the prober falls back.
func TestPoolProbeHealthzFallback(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		http.NotFound(w, r)
	}))
	defer ts.Close()

	c, err := NewPool([]string{ts.URL}, ClientConfig{
		ProbeInterval:  5 * time.Millisecond,
		EjectThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	time.Sleep(60 * time.Millisecond) // ~12 probe rounds
	if st := c.Replicas()[0]; st.State != ReplicaActive || st.ConsecutiveFailures != 0 || c.Ejections() != 0 {
		t.Fatalf("healthz-only replica penalised by probes: %+v, %d ejections", st, c.Ejections())
	}
}

// TestPoolHedgeGoesToDifferentReplica: with both replicas stalling
// longer than the hedge delay, one Plan call must land exactly one
// request on each replica — the hedge may not replay the primary's.
func TestPoolHedgeGoesToDifferentReplica(t *testing.T) {
	var hitsA, hitsB atomic.Int32
	mkServer := func(hits *atomic.Int32) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits.Add(1)
			time.Sleep(80 * time.Millisecond)
			writeJSON(w, http.StatusOK, planOK())
		}))
	}
	a, b := mkServer(&hitsA), mkServer(&hitsB)
	defer a.Close()
	defer b.Close()

	c, err := NewPool([]string{a.URL, b.URL}, ClientConfig{
		ProbeInterval: -1,
		Timeout:       5 * time.Second,
		Hedge:         HedgePolicy{Delay: 10 * time.Millisecond, MaxHedges: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Plan(context.Background(), testPlanReq()); err != nil {
		t.Fatal(err)
	}
	if c.Hedges() != 1 {
		t.Fatalf("Hedges() = %d, want 1", c.Hedges())
	}
	// The loser is cancelled mid-stall, but its handler already counted.
	eventually(t, time.Second, func() bool {
		return hitsA.Load() == 1 && hitsB.Load() == 1
	}, "hedge did not go to the other replica")
}

// TestPoolRejectsCorruptPlan: a replica serving internally inconsistent
// plans (VoC ≠ grid) must never have a response accepted: with a clean
// replica available the call fails over; the corrupt replica racks up
// rejections and is ejected.
func TestPoolRejectsCorruptPlan(t *testing.T) {
	corrupt := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, planCorrupt())
	}))
	defer corrupt.Close()
	clean := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, planOK())
	}))
	defer clean.Close()

	c, err := NewPool([]string{corrupt.URL, clean.URL}, ClientConfig{
		ProbeInterval:  -1,
		Timeout:        5 * time.Second,
		Retry:          RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		RetryBudget:    100,
		EjectThreshold: 3,
		EjectCooldown:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 20; i++ {
		resp, err := c.Plan(context.Background(), testPlanReq())
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if err := VerifyPlanResponse(testPlanReq(), resp); err != nil {
			t.Fatalf("call %d accepted a corrupt plan: %v", i, err)
		}
	}
	if c.CorruptRejected() == 0 {
		t.Fatal("corrupt replica never sampled — test proves nothing")
	}
	if st := replicaByURL(t, c, corrupt.URL); st.State != ReplicaEjected {
		t.Fatalf("corrupt replica state = %v, want ejected", st.State)
	}
}

// TestPoolAllCorruptSurfacesTypedError: when every replica serves
// garbage the caller gets a *CorruptPlanError naming a replica — never
// a silently accepted bad plan.
func TestPoolAllCorruptSurfacesTypedError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, planCorrupt())
	}))
	defer ts.Close()

	c := NewClient(ts.URL, ClientConfig{
		Timeout:     2 * time.Second,
		Retry:       RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond},
		RetryBudget: 100,
	})
	defer c.Close()

	_, err := c.Plan(context.Background(), testPlanReq())
	var ce *CorruptPlanError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptPlanError", err)
	}
	if ce.Replica != ts.URL {
		t.Fatalf("error names replica %q, want %q", ce.Replica, ts.URL)
	}
	if got := c.CorruptRejected(); got != 2 {
		t.Fatalf("CorruptRejected() = %d, want 2 (both attempts)", got)
	}
}

// TestPoolDisableVerify: with verification off the tampered plan sails
// through — the knob must actually disengage the check.
func TestPoolDisableVerify(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, planCorrupt())
	}))
	defer ts.Close()

	c := NewClient(ts.URL, ClientConfig{DisableVerify: true})
	defer c.Close()
	if _, err := c.Plan(context.Background(), testPlanReq()); err != nil {
		t.Fatalf("verification disabled but still rejected: %v", err)
	}
	if c.CorruptRejected() != 0 {
		t.Fatal("CorruptRejected() moved with verification off")
	}
}

// TestVerifyPlanResponse: the verifier's individual checks.
func TestVerifyPlanResponse(t *testing.T) {
	req := testPlanReq()
	if err := VerifyPlanResponse(req, &PlanResponse{}); err == nil {
		t.Fatal("plan-less response verified")
	}
	ok := planOK()
	if err := VerifyPlanResponse(req, &ok); err != nil {
		t.Fatalf("clean plan rejected: %v", err)
	}
	bad := planCorrupt()
	if err := VerifyPlanResponse(req, &bad); err == nil {
		t.Fatal("VoC-tampered plan verified")
	}
	wrongN := req
	wrongN.N = 48
	if err := VerifyPlanResponse(wrongN, &ok); err == nil {
		t.Fatal("plan for another dimension verified")
	}
	wrongRatio := req
	wrongRatio.Ratio = "2:1:1"
	if err := VerifyPlanResponse(wrongRatio, &ok); err == nil {
		t.Fatal("plan for another ratio verified")
	}
	// An unparseable request field skips the cross-check rather than
	// rejecting a plan the server somehow answered.
	looseReq := req
	looseReq.Ratio = "not-a-ratio"
	if err := VerifyPlanResponse(looseReq, &ok); err != nil {
		t.Fatalf("unparseable request field rejected plan: %v", err)
	}
}

// TestDegradedCause: typed reason extraction, including the legacy
// empty-reason degraded response.
func TestDegradedCause(t *testing.T) {
	cases := []struct {
		resp PlanResponse
		want DegradedReason
	}{
		{PlanResponse{}, DegradedNone},
		{PlanResponse{Degraded: true, DegradedReason: DegradedDeadline}, DegradedDeadline},
		{PlanResponse{Degraded: true, DegradedReason: DegradedBreakerOpen}, DegradedBreakerOpen},
		{PlanResponse{Degraded: true}, DegradedSearchError},
		// A reason this client version does not model still round-trips.
		{PlanResponse{Degraded: true, DegradedReason: "quantum-flux"}, "quantum-flux"},
	}
	for i, tc := range cases {
		if got := tc.resp.DegradedCause(); got != tc.want {
			t.Fatalf("case %d: DegradedCause() = %q, want %q", i, got, tc.want)
		}
	}
	if DegradedReason("quantum-flux").Known() {
		t.Fatal("unknown reason reported Known")
	}
	if !DegradedBreakerOpen.Known() {
		t.Fatal("breaker-open not Known")
	}
}

// TestPoolCloseIdempotent: Close twice, and on a probe-less client, is
// safe.
func TestPoolCloseIdempotent(t *testing.T) {
	c := NewClient("http://example.invalid", ClientConfig{})
	c.Close()
	c.Close()
	p, err := NewPool([]string{"http://example.invalid"}, ClientConfig{ProbeInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close()
}
