package serve

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestProbeBackoffReducesProbeRate: a replica that keeps failing its
// readiness probe is probed at exponentially stretching intervals, not
// on every tick — the probe count over a fixed window must come in far
// under the no-backoff rate.
func TestProbeBackoffReducesProbeRate(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c, err := NewPool([]string{ts.URL}, ClientConfig{
		ProbeInterval:   2 * time.Millisecond,
		ProbeMaxBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	time.Sleep(150 * time.Millisecond)
	n := hits.Load()
	// Both /readyz attempts of a failed round count as hits, so the
	// no-backoff rate over 150ms at a 2ms tick is ~150 hits. With
	// doubling delays (2,4,8,16,32,50,50... ±50% jitter) a round fires
	// at most ~10 times.
	if n == 0 {
		t.Fatal("prober never probed")
	}
	if n > 40 {
		t.Fatalf("%d probe hits in 150ms — backoff is not stretching the interval", n)
	}
}

// TestProbeBackoffResetsOnRecovery: once a probe succeeds, the backoff
// clears — the replica is re-admitted and returns to the base probing
// cadence instead of staying on the slow path.
func TestProbeBackoffResetsOnRecovery(t *testing.T) {
	var healthy atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if healthy.Load() {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c, err := NewPool([]string{ts.URL}, ClientConfig{
		ProbeInterval:   2 * time.Millisecond,
		ProbeMaxBackoff: 20 * time.Millisecond,
		EjectThreshold:  1,
		EjectCooldown:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := c.replicas[0]

	// Let the failure streak build a real backoff.
	deadline := time.Now().Add(2 * time.Second)
	for {
		r.mu.Lock()
		fails := r.probeFails
		r.mu.Unlock()
		if fails >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("probe failures never accumulated")
		}
		time.Sleep(time.Millisecond)
	}

	healthy.Store(true)
	for {
		r.mu.Lock()
		fails, next := r.probeFails, r.nextProbe
		r.mu.Unlock()
		if fails == 0 && next.IsZero() && r.state(time.Now()) == ReplicaActive {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("backoff never reset after recovery: fails=%d next=%v state=%v",
				fails, next, r.state(time.Now()))
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCloseCancelsInFlightProbe: Close must cancel a probe blocked on
// an unresponsive replica immediately — it must not wait out the probe
// timeout.
func TestCloseCancelsInFlightProbe(t *testing.T) {
	probing := make(chan struct{}, 1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case probing <- struct{}{}:
		default:
		}
		<-r.Context().Done() // block until the prober gives up
	}))
	defer ts.Close()

	c, err := NewPool([]string{ts.URL}, ClientConfig{ProbeInterval: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-probing:
	case <-time.After(5 * time.Second):
		t.Fatal("probe never reached the server")
	}
	start := time.Now()
	c.Close()
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Fatalf("Close took %v with a probe in flight — the probe context was not cancelled", elapsed)
	}
}

// TestProbeBackoffConcurrentClose hammers the prober's shared state
// from multiple goroutines while probes are failing and backing off,
// then races Close against the readers. Run under -race.
func TestProbeBackoffConcurrentClose(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c, err := NewPool([]string{ts.URL, ts.URL + "/"}, ClientConfig{
		ProbeInterval:   time.Millisecond,
		ProbeMaxBackoff: 4 * time.Millisecond,
		EjectThreshold:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c.Replicas()
				c.Ejections()
				time.Sleep(time.Millisecond)
			}
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(25 * time.Millisecond)
			c.Close() // idempotent: both closers race safely
		}()
	}
	wg.Wait()
}
