package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// batchClientConfig is the fast-retry config the batch client tests
// share: probing off, small bounded backoff.
func batchClientConfig() ClientConfig {
	return ClientConfig{
		ProbeInterval: -1,
		Timeout:       5 * time.Second,
		Retry:         RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		RetryBudget:   100,
	}
}

// batchRespond answers a decoded batch the way a healthy replica would
// for the test scenario: every item gets planOK() unless its N is 13,
// which gets a per-item 400.
func batchRespond(req BatchPlanRequest) BatchPlanResponse {
	resp := BatchPlanResponse{}
	for i, it := range req.Items {
		res := BatchItemResult{Index: i}
		if it.N == 13 {
			res.Status = http.StatusBadRequest
			res.Error = "unlucky n"
			resp.Failed++
		} else {
			res.Status = http.StatusOK
			body, _ := json.Marshal(planOK())
			res.Response = body
			resp.Succeeded++
		}
		resp.Items = append(resp.Items, res)
	}
	return resp
}

func batchHandler(calls *atomic.Int32) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if calls != nil {
			calls.Add(1)
		}
		var req BatchPlanRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, ErrorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, batchRespond(req))
	}
}

// TestShardBounds: the split must cover [0, n) contiguously with at most
// k non-empty, near-equal spans.
func TestShardBounds(t *testing.T) {
	cases := []struct {
		n, k, want int
	}{
		{1, 1, 1}, {1, 8, 1}, {7, 3, 3}, {8, 3, 3}, {9, 3, 3}, {100, 8, 8}, {3, 4, 3},
	}
	for _, tc := range cases {
		bounds := shardBounds(tc.n, tc.k)
		if len(bounds) != tc.want {
			t.Fatalf("shardBounds(%d, %d) gave %d shards, want %d", tc.n, tc.k, len(bounds), tc.want)
		}
		next := 0
		for _, b := range bounds {
			if b[0] != next || b[1] <= b[0] {
				t.Fatalf("shardBounds(%d, %d) = %v: shard %v breaks contiguous non-empty cover", tc.n, tc.k, bounds, b)
			}
			if size := b[1] - b[0]; size > tc.n/tc.want+1 {
				t.Fatalf("shardBounds(%d, %d) = %v: shard %v oversized", tc.n, tc.k, bounds, b)
			}
			next = b[1]
		}
		if next != tc.n {
			t.Fatalf("shardBounds(%d, %d) = %v: cover ends at %d", tc.n, tc.k, bounds, next)
		}
	}
}

// TestPlanBatchShardsAcrossPool: a 6-item batch against a 2-replica pool
// must split into one shard per replica, and the merged response must
// come back in request order with global indices and verified plans.
func TestPlanBatchShardsAcrossPool(t *testing.T) {
	var callsA, callsB atomic.Int32
	a := httptest.NewServer(batchHandler(&callsA))
	defer a.Close()
	b := httptest.NewServer(batchHandler(&callsB))
	defer b.Close()

	c, err := NewPool([]string{a.URL, b.URL}, batchClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	items := make([]PlanRequest, 6)
	for i := range items {
		items[i] = testPlanReq()
	}
	resp, err := c.PlanBatch(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Succeeded != 6 || resp.Failed != 0 {
		t.Fatalf("succeeded/failed = %d/%d, want 6/0", resp.Succeeded, resp.Failed)
	}
	if len(resp.Items) != 6 {
		t.Fatalf("got %d items, want 6", len(resp.Items))
	}
	for i, it := range resp.Items {
		if it.Index != i {
			t.Fatalf("item %d carries index %d — reassembly must restore request order", i, it.Index)
		}
		pr, err := it.Plan()
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if err := pr.Plan.Validate(); err != nil {
			t.Fatalf("item %d plan invalid: %v", i, err)
		}
	}
	if callsA.Load() != 1 || callsB.Load() != 1 {
		t.Fatalf("replica calls = %d/%d, want one shard each", callsA.Load(), callsB.Load())
	}
}

// TestPlanBatchPerItemErrors: per-item server verdicts pass through
// without failing the batch or the healthy items.
func TestPlanBatchPerItemErrors(t *testing.T) {
	ts := httptest.NewServer(batchHandler(nil))
	defer ts.Close()
	c := NewClient(ts.URL, batchClientConfig())
	defer c.Close()

	bad := testPlanReq()
	bad.N = 13
	resp, err := c.PlanBatch(context.Background(), []PlanRequest{testPlanReq(), bad, testPlanReq()})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Succeeded != 2 || resp.Failed != 1 {
		t.Fatalf("succeeded/failed = %d/%d, want 2/1", resp.Succeeded, resp.Failed)
	}
	it := resp.Items[1]
	if it.Status != http.StatusBadRequest || it.Error != "unlucky n" || it.Response != nil {
		t.Fatalf("failed item = %+v, want passed-through 400", it)
	}
	if _, err := it.Plan(); err == nil {
		t.Fatal("Plan() on a failed item must error")
	}
}

// TestPlanBatchPartialShardFailure: when every replica refuses batches
// containing a poisoned item, that item's shard must surface Status-0
// transport entries while the other shard's results stand.
func TestPlanBatchPartialShardFailure(t *testing.T) {
	poisoned := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req BatchPlanRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, ErrorBody{Error: err.Error()})
			return
		}
		for _, it := range req.Items {
			if it.N == 66 {
				writeJSON(w, http.StatusInternalServerError, ErrorBody{Error: "poisoned shard"})
				return
			}
		}
		writeJSON(w, http.StatusOK, batchRespond(req))
	})
	a := httptest.NewServer(poisoned)
	defer a.Close()
	b := httptest.NewServer(poisoned)
	defer b.Close()

	c, err := NewPool([]string{a.URL, b.URL}, batchClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// 4 items → 2 shards of 2; the poison lands in the second shard.
	items := []PlanRequest{testPlanReq(), testPlanReq(), testPlanReq(), testPlanReq()}
	items[3].N = 66
	resp, err := c.PlanBatch(context.Background(), items)
	if err != nil {
		t.Fatalf("PlanBatch must not fail outright on a partial shard loss: %v", err)
	}
	if resp.Succeeded != 2 || resp.Failed != 2 {
		t.Fatalf("succeeded/failed = %d/%d, want 2/2", resp.Succeeded, resp.Failed)
	}
	for i := 0; i < 2; i++ {
		if resp.Items[i].Status != http.StatusOK {
			t.Fatalf("healthy shard item %d status = %d, want 200", i, resp.Items[i].Status)
		}
	}
	for i := 2; i < 4; i++ {
		it := resp.Items[i]
		if it.Status != 0 || it.Error == "" || it.Index != i {
			t.Fatalf("lost shard item %d = %+v, want Status 0 with shard error and global index", i, it)
		}
	}
}

// TestPlanBatchRejectsCorruptItems: a batch whose items carry tampered
// plans must be rejected by per-item re-verification on every replica,
// surfacing as Status-0 entries naming the corruption.
func TestPlanBatchRejectsCorruptItems(t *testing.T) {
	corrupt := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req BatchPlanRequest
		json.NewDecoder(r.Body).Decode(&req)
		resp := BatchPlanResponse{}
		for i := range req.Items {
			body, _ := json.Marshal(planCorrupt())
			resp.Items = append(resp.Items, BatchItemResult{Index: i, Status: http.StatusOK, Response: body})
			resp.Succeeded++
		}
		writeJSON(w, http.StatusOK, resp)
	})
	a := httptest.NewServer(corrupt)
	defer a.Close()
	b := httptest.NewServer(corrupt)
	defer b.Close()

	c, err := NewPool([]string{a.URL, b.URL}, batchClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.PlanBatch(context.Background(), []PlanRequest{testPlanReq(), testPlanReq()})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Succeeded != 0 || resp.Failed != 2 {
		t.Fatalf("succeeded/failed = %d/%d, want 0/2 — corrupt plans must never be accepted", resp.Succeeded, resp.Failed)
	}
	for i, it := range resp.Items {
		if it.Status != 0 || !strings.Contains(it.Error, "corrupt") {
			t.Fatalf("item %d = %+v, want Status 0 naming corruption", i, it)
		}
	}
	if c.CorruptRejected() == 0 {
		t.Fatal("CorruptRejected() = 0, want > 0")
	}
}

// TestPlanBatchVerifierStructure: structurally broken batch bodies —
// wrong item count, out-of-range or duplicate indices — are corrupt even
// with plan verification disabled, because index reassembly depends on
// them.
func TestPlanBatchVerifierStructure(t *testing.T) {
	c := NewClient("http://unused:1", ClientConfig{ProbeInterval: -1, DisableVerify: true})
	defer c.Close()
	shard := []PlanRequest{testPlanReq(), testPlanReq()}
	verify := c.batchVerifier(shard)

	enc := func(items []BatchItemResult) []byte {
		raw, _ := json.Marshal(BatchPlanResponse{Items: items})
		return raw
	}
	cases := []struct {
		name string
		raw  []byte
	}{
		{"not json", []byte("{")},
		{"short", enc([]BatchItemResult{{Index: 0, Status: 200}})},
		{"out of range", enc([]BatchItemResult{{Index: 0, Status: 200}, {Index: 7, Status: 200}})},
		{"duplicate", enc([]BatchItemResult{{Index: 1, Status: 200}, {Index: 1, Status: 200}})},
	}
	for _, tc := range cases {
		if err := verify(tc.raw); err == nil {
			t.Fatalf("%s: verifier accepted a structurally broken batch", tc.name)
		}
	}
	ok := enc([]BatchItemResult{{Index: 0, Status: 200}, {Index: 1, Status: 500, Error: "x"}})
	if err := verify(ok); err != nil {
		t.Fatalf("well-formed batch rejected: %v", err)
	}
}

// TestPlanBatchEmpty: an empty batch is a caller error, not a request.
func TestPlanBatchEmpty(t *testing.T) {
	c := NewClient("http://unused:1", ClientConfig{ProbeInterval: -1})
	defer c.Close()
	if _, err := c.PlanBatch(context.Background(), nil); err == nil {
		t.Fatal("PlanBatch(nil) must error")
	}
}
