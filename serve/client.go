package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// RetryPolicy bounds the client's retry loop.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per call (first attempt
	// included). 0 selects 4.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (base, 2·base, 4·base, …,
	// each fully jittered). 0 selects 50ms.
	BaseDelay time.Duration
	// MaxDelay caps one backoff sleep. 0 selects 2s.
	MaxDelay time.Duration
}

// HedgePolicy enables hedged requests: when the primary attempt has not
// answered within Delay, an identical second request is issued and the
// first response wins. Hedging caps tail latency when a server instance
// stalls; it must only be used against idempotent endpoints, which all
// pland endpoints are.
type HedgePolicy struct {
	// Delay is how long to wait before hedging; 0 disables hedging.
	Delay time.Duration
	// MaxHedges bounds extra in-flight copies per attempt. 0 selects 1
	// (when Delay > 0).
	MaxHedges int
}

// ClientConfig tunes a Client. The zero value gives sane defaults.
type ClientConfig struct {
	// Timeout is the per-call deadline, propagated to the server via the
	// Request-Timeout header. 0 selects 10s. A tighter deadline already
	// on ctx wins.
	Timeout time.Duration
	Retry   RetryPolicy
	Hedge   HedgePolicy
	// RetryBudget is the token-bucket capacity shared by all calls: each
	// retry (not first attempts) spends one token, and tokens refill at
	// RetryRefillPerSec. When the bucket is dry the client fails fast
	// instead of amplifying an outage with a retry storm. 0 selects 10.
	RetryBudget float64
	// RetryRefillPerSec is the budget refill rate. 0 selects 1.
	RetryRefillPerSec float64
	// HTTPClient overrides the transport (nil uses http.DefaultClient).
	HTTPClient *http.Client
}

// APIError is a non-2xx response from the service.
type APIError struct {
	StatusCode int
	Message    string
	// RetryAfter is the server's requested backpressure delay (429/503).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serve: HTTP %d: %s", e.StatusCode, e.Message)
}

// Temporary reports whether the error is worth retrying.
func (e *APIError) Temporary() bool {
	switch e.StatusCode {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// ErrRetryBudgetExhausted wraps the last attempt's error when the shared
// retry budget ran dry before the attempt limit.
var ErrRetryBudgetExhausted = errors.New("serve: retry budget exhausted")

// Client is a robust pland client. Create with NewClient; a Client is
// safe for concurrent use.
type Client struct {
	base   string
	http   *http.Client
	cfg    ClientConfig
	budget tokenBucket

	mu     sync.Mutex
	hedges int64 // hedged sub-requests issued (observability)
}

// NewClient returns a client for the service at baseURL
// (e.g. "http://127.0.0.1:8080").
func NewClient(baseURL string, cfg ClientConfig) *Client {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.Retry.MaxAttempts <= 0 {
		cfg.Retry.MaxAttempts = 4
	}
	if cfg.Retry.BaseDelay <= 0 {
		cfg.Retry.BaseDelay = 50 * time.Millisecond
	}
	if cfg.Retry.MaxDelay <= 0 {
		cfg.Retry.MaxDelay = 2 * time.Second
	}
	if cfg.Hedge.Delay > 0 && cfg.Hedge.MaxHedges <= 0 {
		cfg.Hedge.MaxHedges = 1
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 10
	}
	if cfg.RetryRefillPerSec <= 0 {
		cfg.RetryRefillPerSec = 1
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{
		base: strings.TrimRight(baseURL, "/"),
		http: hc,
		cfg:  cfg,
		budget: tokenBucket{
			tokens:   cfg.RetryBudget,
			capacity: cfg.RetryBudget,
			refill:   cfg.RetryRefillPerSec,
			now:      time.Now,
		},
	}
}

// Plan requests the optimal partitioning decision for a scenario.
func (c *Client) Plan(ctx context.Context, req PlanRequest) (*PlanResponse, error) {
	var resp PlanResponse
	if err := c.do(ctx, "/v1/plan", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Evaluate requests the cost of one named candidate shape.
func (c *Client) Evaluate(ctx context.Context, req EvaluateRequest) (*EvaluateResponse, error) {
	var resp EvaluateResponse
	if err := c.do(ctx, "/v1/evaluate", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Search requests one bounded Push-search run.
func (c *Client) Search(ctx context.Context, req SearchRequest) (*SearchResponse, error) {
	var resp SearchResponse
	if err := c.do(ctx, "/v1/search", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches the server's traffic counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var resp Stats
	if err := c.do(ctx, "/v1/stats", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health probes /healthz once, without retries.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return &APIError{StatusCode: resp.StatusCode, Message: "unhealthy"}
	}
	return nil
}

// Hedges returns the number of hedged sub-requests issued so far.
func (c *Client) Hedges() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hedges
}

// do runs the full robustness stack for one logical call: deadline,
// hedged attempts, retry classification, budgeted jittered backoff.
func (c *Client) do(ctx context.Context, path string, reqBody, out any) error {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	var body []byte
	if reqBody != nil {
		var err error
		if body, err = json.Marshal(reqBody); err != nil {
			return fmt.Errorf("serve: marshal request: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; attempt < c.cfg.Retry.MaxAttempts; attempt++ {
		raw, err := c.attempt(ctx, path, body)
		if err == nil {
			if out == nil {
				return nil
			}
			if err := json.Unmarshal(raw, out); err != nil {
				return fmt.Errorf("serve: decode response: %w", err)
			}
			return nil
		}
		lastErr = err
		if !retryable(err) || ctx.Err() != nil {
			return err
		}
		if attempt+1 >= c.cfg.Retry.MaxAttempts {
			break
		}
		if !c.budget.take(1) {
			return fmt.Errorf("%w: %w", ErrRetryBudgetExhausted, err)
		}
		if err := sleepCtx(ctx, c.backoff(attempt, err)); err != nil {
			return lastErr
		}
	}
	return lastErr
}

// backoff computes the jittered exponential delay for a retry of the
// given attempt, flooring it at the server's Retry-After request.
func (c *Client) backoff(attempt int, cause error) time.Duration {
	// Double up from BaseDelay instead of shifting by attempt: a shift of
	// 35+ overflows time.Duration to a non-positive value that would slip
	// past the MaxDelay clamp and panic rand.Int63n below.
	ceil := c.cfg.Retry.BaseDelay
	for i := 0; i < attempt && 0 < ceil && ceil < c.cfg.Retry.MaxDelay; i++ {
		ceil *= 2
	}
	if ceil <= 0 || ceil > c.cfg.Retry.MaxDelay {
		ceil = c.cfg.Retry.MaxDelay
	}
	// Full jitter: uniform in (0, ceil].
	d := time.Duration(rand.Int63n(int64(ceil))) + 1
	var apiErr *APIError
	if errors.As(cause, &apiErr) && apiErr.RetryAfter > d {
		d = apiErr.RetryAfter
	}
	return d
}

// attempt issues one logical attempt, hedging it with up to MaxHedges
// identical copies when the primary is slow. The first success wins and
// the losers are cancelled; if every copy fails, the primary's error is
// returned.
func (c *Client) attempt(parent context.Context, path string, body []byte) ([]byte, error) {
	hedge := c.cfg.Hedge
	if hedge.Delay <= 0 {
		return c.send(parent, path, body)
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	type result struct {
		raw []byte
		err error
	}
	results := make(chan result, 1+hedge.MaxHedges)
	launch := func() {
		go func() {
			raw, err := c.send(ctx, path, body)
			results <- result{raw, err}
		}()
	}
	launch()
	outstanding, hedged := 1, 0
	timer := time.NewTimer(hedge.Delay)
	defer timer.Stop()
	var firstErr error
	for {
		select {
		case r := <-results:
			if r.err == nil {
				return r.raw, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			outstanding--
			if outstanding == 0 {
				if hedged >= hedge.MaxHedges {
					return nil, firstErr
				}
				// Everything in flight failed fast: hedge immediately
				// rather than waiting out the timer.
				launch()
				outstanding++
				hedged++
				c.noteHedge()
			}
		case <-timer.C:
			if hedged < hedge.MaxHedges {
				launch()
				outstanding++
				hedged++
				c.noteHedge()
				timer.Reset(hedge.Delay)
			}
		case <-parent.Done():
			return nil, parent.Err()
		}
	}
}

func (c *Client) noteHedge() {
	c.mu.Lock()
	c.hedges++
	c.mu.Unlock()
}

// send performs one HTTP exchange and classifies the response.
func (c *Client) send(ctx context.Context, path string, body []byte) ([]byte, error) {
	method := http.MethodPost
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	} else {
		method = http.MethodGet
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Propagate the effective deadline so the server degrades instead of
	// wasting work past the point anyone is listening.
	if dl, ok := ctx.Deadline(); ok {
		if remain := time.Until(dl); remain > 0 {
			req.Header.Set("Request-Timeout", remain.Round(time.Millisecond).String())
		}
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return raw, nil
	}
	apiErr := &APIError{StatusCode: resp.StatusCode, Message: strings.TrimSpace(string(raw))}
	var eb ErrorBody
	if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
		apiErr.Message = eb.Error
		if eb.RetryAfterMS > 0 {
			apiErr.RetryAfter = time.Duration(eb.RetryAfterMS) * time.Millisecond
		}
	}
	if apiErr.RetryAfter == 0 {
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return nil, apiErr
}

// retryable classifies an attempt error: temporary API statuses and
// transport-level failures retry; everything else (4xx validation
// errors, decode failures) fails fast.
func retryable(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Temporary()
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	// Network-level errors (connection refused mid-restart, resets).
	return true
}

// sleepCtx waits for d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// tokenBucket is the shared retry budget: take spends tokens that refill
// over time, and a dry bucket vetoes further retries.
type tokenBucket struct {
	mu       sync.Mutex
	tokens   float64
	capacity float64
	refill   float64 // tokens per second
	last     time.Time
	now      func() time.Time
}

func (b *tokenBucket) take(n float64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.refill
		if b.tokens > b.capacity {
			b.tokens = b.capacity
		}
	}
	b.last = now
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}
