package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// RetryPolicy bounds the client's retry loop.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per call (first attempt
	// included). 0 selects 4.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (base, 2·base, 4·base, …,
	// each fully jittered). 0 selects 50ms.
	BaseDelay time.Duration
	// MaxDelay caps one backoff sleep. 0 selects 2s.
	MaxDelay time.Duration
}

// HedgePolicy enables hedged requests: when the primary attempt has not
// answered within Delay, an identical second request is issued — against
// a different replica whenever the pool has one to offer — and the first
// verified response wins. Hedging caps tail latency when a server
// instance stalls; it must only be used against idempotent endpoints,
// which all pland endpoints are.
type HedgePolicy struct {
	// Delay is how long to wait before hedging; 0 disables hedging.
	Delay time.Duration
	// MaxHedges bounds extra in-flight copies per attempt. 0 selects 1
	// (when Delay > 0).
	MaxHedges int
}

// ClientConfig tunes a Client. The zero value gives sane defaults.
type ClientConfig struct {
	// Timeout is the per-call deadline, propagated to the server via the
	// Request-Timeout header. 0 selects 10s. A tighter deadline already
	// on ctx wins.
	Timeout time.Duration
	Retry   RetryPolicy
	Hedge   HedgePolicy
	// RetryBudget is the token-bucket capacity shared by all calls: each
	// retry (not first attempts) spends one token, and tokens refill at
	// RetryRefillPerSec. When the bucket is dry the client fails fast
	// instead of amplifying an outage with a retry storm. 0 selects 10.
	RetryBudget float64
	// RetryRefillPerSec is the budget refill rate. 0 selects 1.
	RetryRefillPerSec float64

	// ProbeInterval is the background readiness-probe period. NewPool
	// selects 500ms when 0; NewClient keeps probing off unless set.
	// Negative disables probing for either constructor.
	ProbeInterval time.Duration
	// ProbeMaxBackoff caps the jittered exponential backoff applied to
	// probes of a replica that keeps failing them: each consecutive
	// probe failure doubles that replica's next-probe delay (with
	// ±50% jitter to decorrelate a fleet of pools probing the same dead
	// replica) up to this cap. A probe success resets the delay to
	// ProbeInterval. 0 selects 16× ProbeInterval.
	ProbeMaxBackoff time.Duration
	// EjectThreshold is the consecutive-failure count (live calls and
	// probes combined) that ejects a replica from rotation. 0 selects 3.
	EjectThreshold int
	// EjectCooldown is how long an ejected replica sits out before
	// probation. 0 selects 5s.
	EjectCooldown time.Duration
	// DisableVerify turns off the client-side plan re-verification that
	// independently recomputes each /v1/plan response's VoC from its
	// grid and rejects corrupt payloads. Verification is on by default;
	// disable it only when the transport is already integrity-checked
	// and the decode cost matters.
	DisableVerify bool

	// HTTPClient overrides the transport (nil uses http.DefaultClient).
	HTTPClient *http.Client
}

// APIError is a non-2xx response from the service.
type APIError struct {
	StatusCode int
	Message    string
	// RetryAfter is the server's requested backpressure delay (429/503).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serve: HTTP %d: %s", e.StatusCode, e.Message)
}

// Temporary reports whether the error is worth retrying.
func (e *APIError) Temporary() bool {
	switch e.StatusCode {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// ErrRetryBudgetExhausted wraps the last attempt's error when the shared
// retry budget ran dry before the attempt limit.
var ErrRetryBudgetExhausted = errors.New("serve: retry budget exhausted")

// Client is a robust pland client over one replica or a pool of them.
// Create with NewClient or NewPool; a Client is safe for concurrent use.
//
// With more than one replica the client load-balances with
// power-of-two-choices, retries and hedges against different replicas,
// ejects outliers after consecutive failures (re-admitting them via
// probation), and — when created by NewPool or with ProbeInterval set —
// probes each replica's /readyz in the background so not-ready replicas
// leave the rotation before they cost a live request.
type Client struct {
	replicas []*replica
	http     *http.Client
	cfg      ClientConfig
	budget   tokenBucket

	rngMu sync.Mutex
	rng   *rand.Rand

	hedges          atomic.Int64
	ejections       atomic.Int64
	corruptRejected atomic.Int64
	failovers       atomic.Int64

	now func() time.Time

	probeStop   chan struct{}
	probeDone   chan struct{}
	probeCtx    context.Context    // root of every probe request context
	probeCancel context.CancelFunc // Close cancels in-flight probes with it
	closeOnce   sync.Once
}

// NewClient returns a client for the single replica at baseURL
// (e.g. "http://127.0.0.1:8080"). Background probing stays off unless
// cfg.ProbeInterval is set, so existing single-server callers get no
// new goroutine; Close is then a no-op.
func NewClient(baseURL string, cfg ClientConfig) *Client {
	c, err := newClient([]string{baseURL}, cfg)
	if err != nil {
		// Unreachable: one URL is always a valid pool.
		panic(err)
	}
	return c
}

// NewPool returns a client balancing over every replica URL. Readiness
// probing defaults on (500ms); stop it with Close when done.
func NewPool(urls []string, cfg ClientConfig) (*Client, error) {
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	return newClient(urls, cfg)
}

func newClient(urls []string, cfg ClientConfig) (*Client, error) {
	if len(urls) == 0 {
		return nil, ErrNoReplicas
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.Retry.MaxAttempts <= 0 {
		cfg.Retry.MaxAttempts = 4
	}
	if cfg.Retry.BaseDelay <= 0 {
		cfg.Retry.BaseDelay = 50 * time.Millisecond
	}
	if cfg.Retry.MaxDelay <= 0 {
		cfg.Retry.MaxDelay = 2 * time.Second
	}
	if cfg.Hedge.Delay > 0 && cfg.Hedge.MaxHedges <= 0 {
		cfg.Hedge.MaxHedges = 1
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 10
	}
	if cfg.RetryRefillPerSec <= 0 {
		cfg.RetryRefillPerSec = 1
	}
	if cfg.EjectThreshold <= 0 {
		cfg.EjectThreshold = 3
	}
	if cfg.EjectCooldown <= 0 {
		cfg.EjectCooldown = 5 * time.Second
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	c := &Client{
		http: hc,
		cfg:  cfg,
		budget: tokenBucket{
			tokens:   cfg.RetryBudget,
			capacity: cfg.RetryBudget,
			refill:   cfg.RetryRefillPerSec,
			now:      time.Now,
		},
		rng: rand.New(rand.NewSource(time.Now().UnixNano())),
		now: time.Now,
	}
	seen := make(map[string]bool, len(urls))
	for _, u := range urls {
		u = strings.TrimRight(u, "/")
		if seen[u] {
			continue
		}
		seen[u] = true
		c.replicas = append(c.replicas, &replica{url: u})
	}
	if cfg.ProbeInterval > 0 {
		if c.cfg.ProbeMaxBackoff <= 0 {
			c.cfg.ProbeMaxBackoff = 16 * cfg.ProbeInterval
		}
		c.probeStop = make(chan struct{})
		c.probeDone = make(chan struct{})
		c.probeCtx, c.probeCancel = context.WithCancel(context.Background())
		go c.probeLoop()
	}
	return c, nil
}

// Plan requests the optimal partitioning decision for a scenario. Unless
// DisableVerify is set, every response copy is independently re-verified
// (grid decoded, VoC recomputed, scenario cross-checked) before it may
// win; a copy that fails counts as a replica failure and the call fails
// over, so a corrupt payload is never returned.
func (c *Client) Plan(ctx context.Context, req PlanRequest) (*PlanResponse, error) {
	var resp PlanResponse
	if err := c.do(ctx, "/v1/plan", req, &resp, c.planVerifier(req)); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Evaluate requests the cost of one named candidate shape.
func (c *Client) Evaluate(ctx context.Context, req EvaluateRequest) (*EvaluateResponse, error) {
	var resp EvaluateResponse
	if err := c.do(ctx, "/v1/evaluate", req, &resp, nil); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Search requests one bounded Push-search run.
func (c *Client) Search(ctx context.Context, req SearchRequest) (*SearchResponse, error) {
	var resp SearchResponse
	if err := c.do(ctx, "/v1/search", req, &resp, nil); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches traffic counters from one replica (the pool pick).
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var resp Stats
	if err := c.do(ctx, "/v1/stats", nil, &resp, nil); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health probes /healthz without retries, succeeding if any replica
// answers 200.
func (c *Client) Health(ctx context.Context) error {
	var lastErr error
	for _, r := range c.replicas {
		code := c.probeStatus(ctx, r.url+"/healthz")
		if code == http.StatusOK {
			return nil
		}
		if code == 0 {
			lastErr = fmt.Errorf("serve: %s unreachable", r.url)
		} else {
			lastErr = &APIError{StatusCode: code, Message: "unhealthy"}
		}
	}
	return lastErr
}

// Hedges returns the number of hedged sub-requests issued so far.
func (c *Client) Hedges() int64 { return c.hedges.Load() }

// Failovers returns the number of retry attempts issued so far (each
// preferring a replica the call had not yet tried).
func (c *Client) Failovers() int64 { return c.failovers.Load() }

// do runs the full robustness stack for one logical call: deadline,
// replica selection, hedged attempts, response verification, retry
// classification, budgeted jittered backoff. Attempts prefer replicas
// the call has not used yet, so a retry after a failure is a failover,
// not a replay against the same broken box.
func (c *Client) do(ctx context.Context, path string, reqBody, out any, verify func([]byte) error) error {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	var body []byte
	if reqBody != nil {
		var err error
		if body, err = json.Marshal(reqBody); err != nil {
			return fmt.Errorf("serve: marshal request: %w", err)
		}
	}
	tried := make(map[*replica]bool, len(c.replicas))
	var lastErr error
	for attempt := 0; attempt < c.cfg.Retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			// A retry prefers a replica the call has not burned yet (see
			// pick), so each one is a failover, not a replay.
			c.failovers.Add(1)
		}
		raw, err := c.attempt(ctx, path, body, verify, tried)
		if err == nil {
			if out == nil {
				return nil
			}
			if err := json.Unmarshal(raw, out); err != nil {
				return fmt.Errorf("serve: decode response: %w", err)
			}
			return nil
		}
		lastErr = err
		if !retryable(err) || ctx.Err() != nil {
			return err
		}
		if attempt+1 >= c.cfg.Retry.MaxAttempts {
			break
		}
		if !c.budget.take(1) {
			return fmt.Errorf("%w: %w", ErrRetryBudgetExhausted, err)
		}
		if err := sleepCtx(ctx, c.backoff(attempt, err)); err != nil {
			return lastErr
		}
	}
	return lastErr
}

// backoff computes the jittered exponential delay for a retry of the
// given attempt, flooring it at the server's Retry-After request.
func (c *Client) backoff(attempt int, cause error) time.Duration {
	// Double up from BaseDelay instead of shifting by attempt: a shift of
	// 35+ overflows time.Duration to a non-positive value that would slip
	// past the MaxDelay clamp and panic rand.Int63n below.
	ceil := c.cfg.Retry.BaseDelay
	for i := 0; i < attempt && 0 < ceil && ceil < c.cfg.Retry.MaxDelay; i++ {
		ceil *= 2
	}
	if ceil <= 0 || ceil > c.cfg.Retry.MaxDelay {
		ceil = c.cfg.Retry.MaxDelay
	}
	// Full jitter: uniform in (0, ceil].
	d := time.Duration(rand.Int63n(int64(ceil))) + 1
	var apiErr *APIError
	if errors.As(cause, &apiErr) && apiErr.RetryAfter > d {
		d = apiErr.RetryAfter
	}
	return d
}

// attempt issues one logical attempt, hedging it with up to MaxHedges
// copies when the primary is slow. Each copy runs against its own pick
// from the pool (marked in tried, so later copies and retries prefer
// replicas this call has not burned yet), and each copy verifies its
// response before it may win. The first verified success wins and the
// losers are cancelled; if every copy fails, the first error is
// returned. tried is only touched from this goroutine.
func (c *Client) attempt(parent context.Context, path string, body []byte, verify func([]byte) error, tried map[*replica]bool) ([]byte, error) {
	hedge := c.cfg.Hedge
	if hedge.Delay <= 0 {
		rep := c.pick(tried)
		tried[rep] = true
		return c.call(parent, rep, path, body, verify)
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	type result struct {
		raw []byte
		err error
	}
	results := make(chan result, 1+hedge.MaxHedges)
	launch := func() {
		rep := c.pick(tried)
		tried[rep] = true
		go func() {
			raw, err := c.call(ctx, rep, path, body, verify)
			results <- result{raw, err}
		}()
	}
	launch()
	outstanding, hedged := 1, 0
	timer := time.NewTimer(hedge.Delay)
	defer timer.Stop()
	var firstErr error
	for {
		select {
		case r := <-results:
			if r.err == nil {
				return r.raw, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			outstanding--
			if outstanding == 0 {
				if hedged >= hedge.MaxHedges {
					return nil, firstErr
				}
				// Everything in flight failed fast: hedge immediately
				// rather than waiting out the timer.
				launch()
				outstanding++
				hedged++
				c.hedges.Add(1)
			}
		case <-timer.C:
			if hedged < hedge.MaxHedges {
				launch()
				outstanding++
				hedged++
				c.hedges.Add(1)
				timer.Reset(hedge.Delay)
			}
		case <-parent.Done():
			return nil, parent.Err()
		}
	}
}

// call runs one request copy against one replica and settles the
// replica's books: in-flight count around the exchange, then a success
// (latency folded into the EWMA) or — for faults attributable to the
// replica — a consecutive failure that may eject it.
func (c *Client) call(ctx context.Context, rep *replica, path string, body []byte, verify func([]byte) error) ([]byte, error) {
	rep.inflight.Add(1)
	start := c.now()
	raw, err := c.send(ctx, rep, path, body)
	if err == nil && verify != nil {
		if verr := verify(raw); verr != nil {
			c.corruptRejected.Add(1)
			err = &CorruptPlanError{Replica: rep.url, Err: verr}
		}
	}
	latency := c.now().Sub(start)
	rep.inflight.Add(-1)
	switch {
	case err == nil:
		rep.recordSuccess(latency)
	case replicaFault(err):
		if rep.recordFailure(c.now(), c.cfg.EjectThreshold, c.cfg.EjectCooldown) {
			c.ejections.Add(1)
		}
	}
	return raw, err
}

// replicaFault reports whether an error counts against the replica that
// produced it. Cancellation does not: a hedge loser cancelled because a
// sibling won is the client's doing. A non-temporary API status (a 4xx
// validation error) does not either: the replica answered correctly.
// Transport failures, timeouts, 5xx/429, and corrupt payloads all do.
func replicaFault(err error) bool {
	if errors.Is(err, context.Canceled) {
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Temporary()
	}
	return true
}

// send performs one HTTP exchange against one replica and classifies
// the response.
func (c *Client) send(ctx context.Context, rep *replica, path string, body []byte) ([]byte, error) {
	method := http.MethodPost
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	} else {
		method = http.MethodGet
	}
	req, err := http.NewRequestWithContext(ctx, method, rep.url+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Propagate the effective deadline so the server degrades instead of
	// wasting work past the point anyone is listening.
	if dl, ok := ctx.Deadline(); ok {
		if remain := time.Until(dl); remain > 0 {
			req.Header.Set("Request-Timeout", remain.Round(time.Millisecond).String())
		}
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return raw, nil
	}
	apiErr := &APIError{StatusCode: resp.StatusCode, Message: strings.TrimSpace(string(raw))}
	var eb ErrorBody
	if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
		apiErr.Message = eb.Error
		if eb.RetryAfterMS > 0 {
			apiErr.RetryAfter = time.Duration(eb.RetryAfterMS) * time.Millisecond
		}
	}
	if apiErr.RetryAfter == 0 {
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return nil, apiErr
}

// retryable classifies an attempt error: temporary API statuses,
// transport-level failures, and corrupt payloads (another replica may
// hold a clean copy) retry; everything else (4xx validation errors,
// decode failures) fails fast.
func retryable(err error) bool {
	var corrupt *CorruptPlanError
	if errors.As(err, &corrupt) {
		return true
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Temporary()
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	// Network-level errors (connection refused mid-restart, resets).
	return true
}

// sleepCtx waits for d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// tokenBucket is the shared retry budget: take spends tokens that refill
// over time, and a dry bucket vetoes further retries.
type tokenBucket struct {
	mu       sync.Mutex
	tokens   float64
	capacity float64
	refill   float64 // tokens per second
	last     time.Time
	now      func() time.Time
}

func (b *tokenBucket) take(n float64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.refill
		if b.tokens > b.capacity {
			b.tokens = b.capacity
		}
	}
	b.last = now
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}
