// Package serve defines the wire protocol of the partition-planning
// service (cmd/pland) and a robust Go client for it.
//
// The service turns the paper's planning pipeline into an online API:
//
//   - POST /v1/plan — the optimal candidate shape and full Plan for a
//     scenario (N, ratio, algorithm, topology), refined by a bounded
//     Push search when the request's deadline allows. When it does not —
//     or when the search path's circuit breaker is open — the response
//     carries the canonical-shape answer with Degraded set, which is the
//     paper's own fallback: the six canonical candidates are provably
//     strong shapes that are cheap to evaluate.
//   - POST /v1/evaluate — VoC and modelled execution-time breakdown for
//     one named candidate shape.
//   - POST /v1/search — a bounded Push-search run (the Section VI DFA)
//     under the request deadline.
//
// Every endpoint also accepts GET with the same fields as query
// parameters, and honours a Request-Timeout header (a Go duration such
// as "250ms", or an integer millisecond count) as the serving deadline.
//
// Client implements retries with jittered exponential backoff and a
// retry budget, honours Retry-After on load-shed responses, and can
// hedge slow requests against a second in-flight attempt.
package serve

import (
	"encoding/json"
	"fmt"

	heteropart "repro"
)

// PlanRequest asks for the optimal partitioning decision for a scenario.
type PlanRequest struct {
	// N is the matrix dimension.
	N int `json:"n"`
	// Ratio is the processor speed ratio "Pr:Rr:Sr".
	Ratio string `json:"ratio"`
	// Algorithm names one of the five MMM algorithms (SCB, PCB, SCO,
	// PCO, PIO).
	Algorithm string `json:"algorithm"`
	// Topology is a topology spec: "fully-connected" (default), "star",
	// the per-link classes "2+1[:f]" and "3-island[:f]", or an explicit
	// "links:PR=…,PS=…,RS=…" matrix (heteropart.ParseTopologySpec).
	// Malformed specs are rejected with a 400 naming the offending entry.
	Topology string `json:"topology,omitempty"`
	// Seed drives the Push-search refinement's randomisation; 0 selects
	// the server default.
	Seed int64 `json:"seed,omitempty"`
}

// SearchSummary reports the Push-search refinement attached to a
// non-degraded plan response.
type SearchSummary struct {
	Steps      int   `json:"steps"`
	InitialVoC int64 `json:"initialVoc"`
	FinalVoC   int64 `json:"finalVoc"`
	Converged  bool  `json:"converged"`
	// Archetype is the terminal shape family (A–D) the search reached.
	Archetype string `json:"archetype"`
	// Improved reports whether the searched partition beat the canonical
	// candidate's communication volume (it rarely does — that is the
	// paper's point — but the search is the proof).
	Improved  bool    `json:"improved"`
	ElapsedMS float64 `json:"elapsedMs"`
}

// Plan response sources.
const (
	// SourceSearch marks a full-quality answer: canonical candidate
	// comparison plus a completed Push-search refinement.
	SourceSearch = "search"
	// SourceCanonical marks a degraded answer served from the canonical
	// candidate evaluation only.
	SourceCanonical = "canonical"
	// SourceCache marks a fresh cache hit of an earlier searched answer.
	SourceCache = "cache"
	// SourceStaleCache marks a degraded answer served from an expired
	// cache entry — better than bare canonical, still marked Degraded.
	SourceStaleCache = "stale-cache"
	// SourceAtlas marks a full-quality answer served from the precomputed
	// shape atlas: the scenario sat exactly on the atlas grid, so the
	// baked winner — bit-identical to what the search path would return —
	// was encoded in O(1) without touching the search engine, breaker, or
	// admission gate.
	SourceAtlas = "atlas"
	// SourceAtlasShape marks a degraded answer built from the atlas's
	// winner shape for the request's ratio at a different matrix dimension
	// than the atlas was baked for — better-informed than the bare
	// canonical fallback and cheaper (one shape built instead of six).
	SourceAtlasShape = "atlas-shape"
)

// DegradedReason is the typed cause of a degraded plan answer, so
// callers branch on constants instead of string-matching wire JSON.
type DegradedReason string

// The degraded-mode causes a pland server reports.
const (
	// DegradedNone marks a full-quality answer.
	DegradedNone DegradedReason = ""
	// DegradedDeadline: the request deadline left no room for a search.
	DegradedDeadline DegradedReason = "deadline"
	// DegradedBreakerOpen: the search path's circuit breaker was open.
	DegradedBreakerOpen DegradedReason = "breaker-open"
	// DegradedCancelled: the coalesced flight leader's client
	// disconnected mid-search.
	DegradedCancelled DegradedReason = "cancelled"
	// DegradedSearchError: the search itself failed.
	DegradedSearchError DegradedReason = "search-error"
	// DegradedLoadShed: the adaptive load controller shed the search
	// tier — the answer is the best the current shed rung allows
	// (atlas shape, stale cache, or canonical evaluation).
	DegradedLoadShed DegradedReason = "load-shed"
)

// Known reports whether the reason is one this client version models; a
// newer server may introduce causes an older client should still treat
// as generically degraded.
func (r DegradedReason) Known() bool {
	switch r {
	case DegradedNone, DegradedDeadline, DegradedBreakerOpen, DegradedCancelled, DegradedSearchError, DegradedLoadShed:
		return true
	}
	return false
}

// PlanResponse is the service's partitioning decision.
type PlanResponse struct {
	Plan *heteropart.Plan `json:"plan"`
	// Degraded is set when the search path was skipped or abandoned
	// (deadline too short, circuit breaker open) and the answer is the
	// canonical-shape fallback.
	Degraded bool `json:"degraded"`
	// DegradedReason explains a degraded answer; see the DegradedReason
	// constants.
	DegradedReason DegradedReason `json:"degradedReason,omitempty"`
	// Source is one of the Source* constants.
	Source string `json:"source"`
	// Search is present on non-degraded responses.
	Search    *SearchSummary `json:"search,omitempty"`
	ElapsedMS float64        `json:"elapsedMs"`
}

// DegradedCause returns the typed degraded reason of the response:
// DegradedNone for full-quality answers, and never "" for degraded ones
// (a degraded response from a server that omitted the reason maps to
// DegradedSearchError, the most conservative cause).
func (r *PlanResponse) DegradedCause() DegradedReason {
	if !r.Degraded {
		return DegradedNone
	}
	if r.DegradedReason == "" {
		return DegradedSearchError
	}
	return r.DegradedReason
}

// BatchPlanRequest asks POST /v1/plan:batch for many plans in one round
// trip, amortising connection, header, and decode cost — the natural
// shape for atlas-backed traffic, where each answer is an O(1) lookup.
type BatchPlanRequest struct {
	Items []PlanRequest `json:"items"`
}

// BatchItemResult is one item's outcome inside a batch response. Items
// fail independently: a bad ratio in item 3 yields a per-item error
// there while every other item still carries its plan.
type BatchItemResult struct {
	// Index is the item's position in the request (explicit so streamed
	// and re-sharded results can be reassembled without positional trust).
	Index int `json:"index"`
	// Status is the HTTP status this item would have received as a
	// standalone /v1/plan request (200 on success). 0 means the item was
	// never attempted — its shard's transport failed (client side only).
	Status int `json:"status"`
	// Error is set when Status is not 200.
	Error string `json:"error,omitempty"`
	// Response is the raw PlanResponse JSON on success. Kept raw so the
	// server can splice pre-encoded atlas answers without re-marshalling
	// and clients decode only the items they need.
	Response json.RawMessage `json:"response,omitempty"`
}

// Plan decodes the item's PlanResponse, or explains why there is none.
func (it *BatchItemResult) Plan() (*PlanResponse, error) {
	if it.Status == 0 {
		return nil, fmt.Errorf("serve: batch item %d not attempted: %s", it.Index, it.Error)
	}
	if it.Status != 200 {
		return nil, fmt.Errorf("serve: batch item %d failed with status %d: %s", it.Index, it.Status, it.Error)
	}
	var resp PlanResponse
	if err := json.Unmarshal(it.Response, &resp); err != nil {
		return nil, fmt.Errorf("serve: batch item %d response: %w", it.Index, err)
	}
	return &resp, nil
}

// BatchPlanResponse is the non-streaming batch reply.
type BatchPlanResponse struct {
	Items     []BatchItemResult `json:"items"`
	Succeeded int               `json:"succeeded"`
	Failed    int               `json:"failed"`
	ElapsedMS float64           `json:"elapsedMs"`
}

// BatchStreamTrailer is the final line of a streamed (NDJSON) batch
// response: each preceding line is one BatchItemResult, emitted as soon
// as its item completes; the trailer closes the stream with the totals.
// Request streaming with "Accept: application/x-ndjson" or "?stream=1".
type BatchStreamTrailer struct {
	Trailer   bool    `json:"trailer"`
	Succeeded int     `json:"succeeded"`
	Failed    int     `json:"failed"`
	ElapsedMS float64 `json:"elapsedMs"`
}

// EvaluateRequest asks for the cost of one named candidate shape.
type EvaluateRequest struct {
	N         int    `json:"n"`
	Ratio     string `json:"ratio"`
	Algorithm string `json:"algorithm"`
	// Topology accepts the full spec grammar (see PlanRequest.Topology).
	Topology string `json:"topology,omitempty"`
	// Shape is a canonical shape name ("Square-Corner", ...).
	Shape string `json:"shape"`
}

// ProcShare is one processor's share of an evaluated shape.
type ProcShare struct {
	Processor string `json:"processor"`
	Elements  int    `json:"elements"`
}

// EvaluateResponse reports one candidate's cost model breakdown.
type EvaluateResponse struct {
	Shape    string `json:"shape"`
	Feasible bool   `json:"feasible"`
	// VoC is the communication volume in elements (valid when Feasible).
	VoC       int64                `json:"voc"`
	Breakdown heteropart.Breakdown `json:"breakdown"`
	Procs     []ProcShare          `json:"procs,omitempty"`
	ElapsedMS float64              `json:"elapsedMs"`
}

// SearchRequest asks for one bounded Push-search run.
type SearchRequest struct {
	N     int    `json:"n"`
	Ratio string `json:"ratio"`
	Seed  int64  `json:"seed,omitempty"`
	// MaxSteps bounds the committed Pushes; 0 selects the engine default
	// (clamped by the server's configured ceiling).
	MaxSteps int  `json:"maxSteps,omitempty"`
	Beautify bool `json:"beautify,omitempty"`
}

// SearchResponse reports a completed Push-search run.
type SearchResponse struct {
	Steps      int     `json:"steps"`
	InitialVoC int64   `json:"initialVoc"`
	FinalVoC   int64   `json:"finalVoc"`
	Converged  bool    `json:"converged"`
	Archetype  string  `json:"archetype"`
	ElapsedMS  float64 `json:"elapsedMs"`
}

// ErrorBody is the JSON body of every non-2xx response.
type ErrorBody struct {
	Error string `json:"error"`
	// RetryAfterMS mirrors the Retry-After header on 429/503 responses.
	RetryAfterMS int64 `json:"retryAfterMs,omitempty"`
}

// ReadyResponse is the body of /readyz: liveness (/healthz) says the
// process is up, readiness says it can currently give full-quality
// service. A replica pool uses it to eject not-ready replicas — a
// draining server, an open search breaker, or a saturated admission
// gate — before they turn into timeouts.
type ReadyResponse struct {
	Ready bool `json:"ready"`
	// Reasons lists why the server is not ready (empty when Ready).
	Reasons []string `json:"reasons,omitempty"`
	// Breaker is the search circuit breaker's state: "closed", "open",
	// or "half-open".
	Breaker string `json:"breaker"`
	// InFlight/MaxConcurrent and Queued/MaxQueue report admission-gate
	// occupancy.
	InFlight      int `json:"inFlight"`
	MaxConcurrent int `json:"maxConcurrent"`
	Queued        int `json:"queued"`
	MaxQueue      int `json:"maxQueue"`
	// JournalHealthy is false when the cache journal was quarantined at
	// startup (the server runs, but cold and without its degraded-mode
	// inventory); JournalError carries the scrub diagnosis.
	JournalHealthy bool   `json:"journalHealthy"`
	JournalError   string `json:"journalError,omitempty"`
	Draining       bool   `json:"draining"`
}

// Stats is the served-traffic counter snapshot of /v1/stats.
type Stats struct {
	Requests     int64 `json:"requests"`
	Shed         int64 `json:"shed"`
	Degraded     int64 `json:"degraded"`
	Searched     int64 `json:"searched"`
	CacheHits    int64 `json:"cacheHits"`
	CacheMisses  int64 `json:"cacheMisses"`
	StaleServed  int64 `json:"staleServed"`
	Coalesced    int64 `json:"coalesced"`
	Panics       int64 `json:"panics"`
	BreakerTrips int64 `json:"breakerTrips"`
	// AtlasHits counts plan answers (single and batch items) served from
	// the precomputed shape atlas; AtlasRejects counts atlas records that
	// failed the encode-time cross-check against the live planner and
	// fell through to the search path.
	AtlasHits    int64 `json:"atlasHits"`
	AtlasRejects int64 `json:"atlasRejects"`
	// BatchRequests counts /v1/plan:batch calls; BatchItems the plan
	// items inside them.
	BatchRequests int64 `json:"batchRequests"`
	BatchItems    int64 `json:"batchItems"`
	// Replans counts background re-plans triggered by calibration
	// drift publishes.
	Replans int64 `json:"replans"`
	// ShedTier is the load controller's current rung ("search",
	// "bounded", "atlas", "stale", "reject").
	ShedTier string `json:"shedTier,omitempty"`
	// GateFallbacks counts search-path requests that found the admission
	// gate saturated and were served the ungated degraded fallback
	// instead of a 429 — overload converts to quality loss, not
	// availability loss.
	GateFallbacks int64 `json:"gateFallbacks"`
}

// AnswerTiers breaks the served plan answers down by tier: "atlas"
// (O(1) precomputed), "cache" (fresh memo of an earlier search),
// "searched" (full-quality online answer), and "degraded" (any
// fallback). The mix is the serving tier's quality dashboard: a healthy
// atlas deployment shows the bulk in "atlas", a cold or off-grid
// workload in "searched", an overloaded one in "degraded".
func (s Stats) AnswerTiers() map[string]int64 {
	return map[string]int64{
		"atlas":    s.AtlasHits,
		"cache":    s.CacheHits,
		"searched": s.Searched,
		"degraded": s.Degraded,
	}
}
