package serve

import (
	"encoding/json"
	"fmt"

	heteropart "repro"
)

// CorruptPlanError reports a plan response that failed the client's
// independent re-verification: the payload decoded, but its content is
// internally inconsistent (VoC does not match the grid, element counts
// do not cover the matrix) or answers a different scenario than was
// asked. The client never surfaces such a response — it counts the
// replica as failed and retries elsewhere — so this error only reaches
// the caller when every replica served garbage.
type CorruptPlanError struct {
	// Replica is the base URL of the replica that served the payload.
	Replica string
	// Err is the underlying verification failure (often a
	// *heteropart.PlanError naming the inconsistent field).
	Err error
}

func (e *CorruptPlanError) Error() string {
	return fmt.Sprintf("serve: corrupt plan from %s: %v", e.Replica, e.Err)
}

func (e *CorruptPlanError) Unwrap() error { return e.Err }

// planVerifier returns the re-verification hook for one /v1/plan call,
// or nil when verification is disabled. It runs on every response copy
// (including hedges) before that copy is allowed to win the call.
func (c *Client) planVerifier(req PlanRequest) func([]byte) error {
	if c.cfg.DisableVerify {
		return nil
	}
	return func(raw []byte) error {
		var resp PlanResponse
		if err := json.Unmarshal(raw, &resp); err != nil {
			return fmt.Errorf("undecodable plan response: %w", err)
		}
		return VerifyPlanResponse(req, &resp)
	}
}

// VerifyPlanResponse independently re-verifies a plan response against
// the request that produced it. Trust nothing the wire says about
// itself: Plan.Validate decodes the grid and recomputes the VoC and
// per-processor element counts from it, so a response whose "voc" field
// was flipped in flight — or whose grid no longer matches its summary —
// is rejected even though it is perfectly well-formed JSON. On top of
// that, the plan must answer the scenario that was actually asked
// (dimension, ratio, algorithm, topology), which catches a response
// crossed over from another request.
func VerifyPlanResponse(req PlanRequest, resp *PlanResponse) error {
	if resp.Plan == nil {
		return fmt.Errorf("response carries no plan")
	}
	p := resp.Plan
	if err := p.Validate(); err != nil {
		return err
	}
	if p.N != req.N {
		return fmt.Errorf("plan is for n=%d, requested n=%d", p.N, req.N)
	}
	if r, err := heteropart.ParseRatio(req.Ratio); err == nil && p.Ratio != r.String() {
		return fmt.Errorf("plan is for ratio %s, requested %s", p.Ratio, r.String())
	}
	if a, err := heteropart.ParseAlgorithm(req.Algorithm); err == nil && p.Algorithm != a.String() {
		return fmt.Errorf("plan is for algorithm %s, requested %s", p.Algorithm, a.String())
	}
	if tp, err := heteropart.ParseTopology(req.Topology); err == nil && p.Topology != tp.String() {
		return fmt.Errorf("plan is for topology %s, requested %s", p.Topology, tp.String())
	}
	return nil
}
