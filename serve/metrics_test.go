package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestPoolMetricsScrape drives a two-replica pool — one healthy, one
// always failing — and checks the scrape reflects what the pool saw:
// failovers happened, the bad replica was ejected, per-replica series
// exist for both members.
func TestPoolMetricsScrape(t *testing.T) {
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"requests":1}`))
	}))
	defer good.Close()
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer bad.Close()

	c, err := NewPool([]string{good.URL, bad.URL}, ClientConfig{
		Timeout:        2 * time.Second,
		Retry:          RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
		EjectThreshold: 1,
		EjectCooldown:  time.Minute,
		ProbeInterval:  -1, // deterministic: no background probes
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	reg := metrics.NewRegistry()
	c.RegisterMetrics(reg)

	// Enough calls that both replicas get picked at least once.
	for i := 0; i < 8; i++ {
		if _, err := c.Stats(context.Background()); err != nil {
			t.Fatalf("Stats: %v", err)
		}
	}

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	got, err := metrics.ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ParseText: %v\n%s", err, b.String())
	}

	for _, rep := range []string{good.URL, bad.URL} {
		for _, fam := range []string{
			"planpool_replica_in_flight",
			"planpool_replica_latency_ewma_ms",
			"planpool_replica_ejections_total",
			"planpool_replica_consecutive_failures",
			"planpool_replica_state",
		} {
			key := fam + `{replica="` + rep + `"}`
			if _, ok := got[key]; !ok {
				t.Errorf("scrape missing %s\n%s", key, b.String())
			}
		}
	}
	if got[`planpool_replica_state{replica="`+bad.URL+`"}`] != 2 {
		t.Errorf("bad replica not ejected in scrape:\n%s", b.String())
	}
	if got[`planpool_replica_state{replica="`+good.URL+`"}`] != 0 {
		t.Errorf("good replica not active in scrape:\n%s", b.String())
	}
	if got["planpool_ejections_total"] < 1 {
		t.Errorf("ejections_total = %v, want >= 1", got["planpool_ejections_total"])
	}
	if got["planpool_failovers_total"] < 1 {
		t.Errorf("failovers_total = %v, want >= 1", got["planpool_failovers_total"])
	}
	if got["planpool_failovers_total"] != float64(c.Failovers()) {
		t.Errorf("scrape failovers %v != accessor %v", got["planpool_failovers_total"], c.Failovers())
	}
	if got["planpool_corrupt_rejected_total"] != 0 {
		t.Errorf("corrupt_rejected_total = %v, want 0", got["planpool_corrupt_rejected_total"])
	}
}
