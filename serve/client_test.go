package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"context"

	heteropart "repro"
)

// testPlan builds (once) a real, internally consistent plan for the
// scenario the client tests request — the stub servers must pass the
// client's independent re-verification, not just return valid JSON.
var testPlan = sync.OnceValue(func() *heteropart.Plan {
	ratio := heteropart.MustRatio(3, 1, 1)
	p, err := heteropart.NewPlan(heteropart.SCB, heteropart.DefaultMachine(ratio), 40)
	if err != nil {
		panic(err)
	}
	return p
})

func planOK() PlanResponse {
	return PlanResponse{
		Plan:           testPlan(),
		Source:         SourceCanonical,
		Degraded:       true,
		DegradedReason: "deadline",
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// TestClientRetriesOnShed: a server that sheds twice with 429 and then
// answers. The client must retry with backoff, honour Retry-After, and
// succeed on the third attempt.
func TestClientRetriesOnShed(t *testing.T) {
	var calls int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := atomic.AddInt32(&calls, 1)
		if n <= 2 {
			writeJSON(w, http.StatusTooManyRequests, ErrorBody{Error: "saturated", RetryAfterMS: 5})
			return
		}
		writeJSON(w, http.StatusOK, planOK())
	}))
	defer ts.Close()

	c := NewClient(ts.URL, ClientConfig{
		Timeout: 5 * time.Second,
		Retry:   RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond},
	})
	resp, err := c.Plan(context.Background(), PlanRequest{N: 40, Ratio: "3:1:1", Algorithm: "SCB"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || resp.Source != SourceCanonical {
		t.Fatalf("resp = %+v", resp)
	}
	if got := atomic.LoadInt32(&calls); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
}

// TestClientNoRetryOn400: validation errors are permanent; the client
// must fail fast without retrying.
func TestClientNoRetryOn400(t *testing.T) {
	var calls int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		writeJSON(w, http.StatusBadRequest, ErrorBody{Error: "n must be ≥ 4"})
	}))
	defer ts.Close()

	c := NewClient(ts.URL, ClientConfig{Retry: RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}})
	_, err := c.Plan(context.Background(), PlanRequest{N: 1})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("err = %v, want 400 APIError", err)
	}
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (no retries on 400)", got)
	}
}

// TestClientRetryBudgetExhaustion: with a zero-refill one-token budget, a
// persistently failing server gets exactly one retry before the client
// fails fast with ErrRetryBudgetExhausted.
func TestClientRetryBudgetExhaustion(t *testing.T) {
	var calls int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		writeJSON(w, http.StatusServiceUnavailable, ErrorBody{Error: "down"})
	}))
	defer ts.Close()

	c := NewClient(ts.URL, ClientConfig{
		Retry:             RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
		RetryBudget:       1,
		RetryRefillPerSec: 0.000001,
	})
	_, err := c.Plan(context.Background(), PlanRequest{N: 40, Ratio: "3:1:1", Algorithm: "SCB"})
	if !errors.Is(err, ErrRetryBudgetExhausted) {
		t.Fatalf("err = %v, want ErrRetryBudgetExhausted", err)
	}
	// 1 first attempt + 1 budgeted retry + the attempt that found the
	// bucket dry = 2 calls.
	if got := atomic.LoadInt32(&calls); got != 2 {
		t.Fatalf("server saw %d calls, want 2", got)
	}
}

// TestClientHedging: the first request stalls, the hedge answers
// immediately — the call must return the hedge's response well before the
// stall ends, and report a hedge was issued.
func TestClientHedging(t *testing.T) {
	var calls int32
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) == 1 {
			select {
			case <-release:
			case <-r.Context().Done():
				return
			}
		}
		writeJSON(w, http.StatusOK, planOK())
	}))
	defer ts.Close()
	defer close(release)

	c := NewClient(ts.URL, ClientConfig{
		Timeout: 10 * time.Second,
		Hedge:   HedgePolicy{Delay: 20 * time.Millisecond, MaxHedges: 1},
	})
	start := time.Now()
	resp, err := c.Plan(context.Background(), PlanRequest{N: 40, Ratio: "3:1:1", Algorithm: "SCB"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Source != SourceCanonical {
		t.Fatalf("resp = %+v", resp)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hedged call took %v — hedge never won", elapsed)
	}
	if c.Hedges() != 1 {
		t.Fatalf("Hedges() = %d, want 1", c.Hedges())
	}
}

// TestClientNetworkErrorRetries: connection failures are retryable.
func TestClientNetworkErrorRetries(t *testing.T) {
	// A server that closes immediately: the port is then dead, every
	// attempt fails at the transport level.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close()

	c := NewClient(url, ClientConfig{
		Timeout: 2 * time.Second,
		Retry:   RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	})
	_, err := c.Plan(context.Background(), PlanRequest{N: 40, Ratio: "3:1:1", Algorithm: "SCB"})
	if err == nil {
		t.Fatal("dead server should error")
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		t.Fatalf("expected transport error, got API error %v", err)
	}
}

func TestTokenBucketRefill(t *testing.T) {
	now := time.Unix(1000, 0)
	b := tokenBucket{tokens: 1, capacity: 2, refill: 1, now: func() time.Time { return now }}
	if !b.take(1) {
		t.Fatal("first take should succeed")
	}
	if b.take(1) {
		t.Fatal("bucket should be dry")
	}
	now = now.Add(1500 * time.Millisecond)
	if !b.take(1) {
		t.Fatal("refilled bucket should admit")
	}
	// Refill is capped at capacity.
	now = now.Add(time.Hour)
	if !b.take(1) || !b.take(1) || b.take(1) {
		t.Fatal("refill must cap at capacity 2")
	}
}

// TestBackoffOverflowClamped: high attempt counts must clamp to MaxDelay
// instead of overflowing the exponential ceiling to a non-positive value
// (which would panic rand.Int63n).
func TestBackoffOverflowClamped(t *testing.T) {
	c := NewClient("http://example.invalid", ClientConfig{
		Retry: RetryPolicy{MaxAttempts: 100, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second},
	})
	for attempt := 0; attempt < 100; attempt++ {
		d := c.backoff(attempt, nil)
		if d <= 0 || d > 2*time.Second {
			t.Fatalf("backoff(%d) = %v, want in (0, 2s]", attempt, d)
		}
	}
}
