package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// maxBatchShards caps how many concurrent shard requests one PlanBatch
// call fans out, however many replicas the pool holds.
const maxBatchShards = 8

// PlanBatch requests many plan scenarios in one logical call against
// /v1/plan:batch. With a pool, the items are split into contiguous
// shards — one per replica in the pool, capped at maxBatchShards — and
// the shards run concurrently, each with the client's full robustness
// stack (retry with failover, hedging, verification).
//
// Failure is partial, mirroring the server's per-item semantics: a
// per-item server error arrives as that item's Status/Error; a shard
// whose every attempt failed yields entries with Status 0 (never
// attempted) and the shard error for its items, while other shards'
// results stand. The returned response always carries exactly one entry
// per request item, in request order with global indices; the error
// return is reserved for empty input and context cancellation.
//
// Unless DisableVerify is set, every successful item is independently
// re-verified against its own request (the same checks as Plan); a
// shard carrying any corrupt item is treated as a corrupt response and
// retried on another replica.
func (c *Client) PlanBatch(ctx context.Context, items []PlanRequest) (*BatchPlanResponse, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("serve: empty batch")
	}
	start := time.Now()
	bounds := shardBounds(len(items), c.batchShards())

	out := &BatchPlanResponse{Items: make([]BatchItemResult, len(items))}
	var wg sync.WaitGroup
	for _, b := range bounds {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			c.planShard(ctx, items, lo, hi, out.Items[lo:hi])
		}(b[0], b[1])
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i := range out.Items {
		if out.Items[i].Status == 200 {
			out.Succeeded++
		} else {
			out.Failed++
		}
	}
	out.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	return out, nil
}

// batchShards returns how many shards to fan a batch into.
func (c *Client) batchShards() int {
	n := len(c.replicas)
	if n > maxBatchShards {
		n = maxBatchShards
	}
	if n < 1 {
		n = 1
	}
	return n
}

// shardBounds splits n items into at most k contiguous [lo, hi) spans of
// near-equal size (never empty).
func shardBounds(n, k int) [][2]int {
	if k > n {
		k = n
	}
	bounds := make([][2]int, 0, k)
	lo := 0
	for i := 0; i < k; i++ {
		size := n / k
		if i < n%k {
			size++
		}
		bounds = append(bounds, [2]int{lo, lo + size})
		lo += size
	}
	return bounds
}

// planShard runs one shard through the retry/hedge/verify stack and
// writes its results — re-indexed to global positions — into dst.
func (c *Client) planShard(ctx context.Context, items []PlanRequest, lo, hi int, dst []BatchItemResult) {
	shard := items[lo:hi]
	var resp BatchPlanResponse
	err := c.do(ctx, "/v1/plan:batch", BatchPlanRequest{Items: shard}, &resp, c.batchVerifier(shard))
	if err != nil {
		// The whole shard failed after retries: every item reports the
		// shard error with Status 0 ("never attempted") so callers can
		// tell a transport loss from a server verdict.
		for i := range dst {
			dst[i] = BatchItemResult{Index: lo + i, Error: err.Error()}
		}
		return
	}
	// The verifier proved the index set is exactly 0..len(shard)-1.
	for _, it := range resp.Items {
		global := it.Index + lo
		it.Index = global
		dst[it.Index-lo] = it
	}
}

// batchVerifier checks one shard's raw response before it may win its
// attempt: structurally (every shard index present exactly once) and,
// unless verification is disabled, per item with the same independent
// re-verification as Plan. Any violation marks the response corrupt, so
// the attempt fails over to another replica.
func (c *Client) batchVerifier(shard []PlanRequest) func([]byte) error {
	return func(raw []byte) error {
		var resp BatchPlanResponse
		if err := json.Unmarshal(raw, &resp); err != nil {
			return fmt.Errorf("undecodable batch response: %w", err)
		}
		if len(resp.Items) != len(shard) {
			return fmt.Errorf("batch response carries %d items, shard sent %d", len(resp.Items), len(shard))
		}
		seen := make([]bool, len(shard))
		for _, it := range resp.Items {
			if it.Index < 0 || it.Index >= len(shard) {
				return fmt.Errorf("batch item index %d outside shard of %d", it.Index, len(shard))
			}
			if seen[it.Index] {
				return fmt.Errorf("batch item index %d duplicated", it.Index)
			}
			seen[it.Index] = true
			if it.Status != 200 || c.cfg.DisableVerify {
				continue
			}
			pr, err := it.Plan()
			if err != nil {
				return fmt.Errorf("batch item %d: %w", it.Index, err)
			}
			if err := VerifyPlanResponse(shard[it.Index], pr); err != nil {
				return fmt.Errorf("batch item %d: %w", it.Index, err)
			}
		}
		return nil
	}
}
