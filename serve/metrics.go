package serve

import (
	"repro/internal/metrics"
)

// RegisterMetrics exposes the client pool's counters and per-replica
// state on reg, for operators embedding the pool in their own binary
// (see examples/replicated_planning):
//
//	planpool_hedges_total            hedged sub-requests issued
//	planpool_failovers_total         retry attempts (failovers)
//	planpool_ejections_total         replica ejections and re-ejections
//	planpool_corrupt_rejected_total  responses failing plan re-verification
//	planpool_replica_in_flight{replica}             live calls on the replica
//	planpool_replica_latency_ewma_ms{replica}       smoothed success latency
//	planpool_replica_ejections_total{replica}       this replica's ejections
//	planpool_replica_consecutive_failures{replica}  current failure streak
//	planpool_replica_state{replica}                 0 active, 1 probation, 2 ejected
//
// All series are func-backed reads of state the pool already tracks,
// so registration adds no cost to the call path. Register a given
// Client on a given Registry at most once.
func (c *Client) RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("planpool_hedges_total",
		"Hedged sub-requests issued against a slow primary attempt.",
		func() float64 { return float64(c.hedges.Load()) })
	reg.CounterFunc("planpool_failovers_total",
		"Retry attempts, each preferring an untried replica.",
		func() float64 { return float64(c.failovers.Load()) })
	reg.CounterFunc("planpool_ejections_total",
		"Replica ejections and re-ejections from live failures or probes.",
		func() float64 { return float64(c.ejections.Load()) })
	reg.CounterFunc("planpool_corrupt_rejected_total",
		"Responses rejected after failing independent plan re-verification.",
		func() float64 { return float64(c.corruptRejected.Load()) })

	for _, rep := range c.replicas {
		reg.LabeledGaugeFunc("planpool_replica_in_flight",
			"Live calls currently running against the replica.",
			"replica", rep.url,
			func() float64 { return float64(rep.inflight.Load()) })
		reg.LabeledGaugeFunc("planpool_replica_latency_ewma_ms",
			"EWMA of the replica's successful-call latency in milliseconds.",
			"replica", rep.url,
			func() float64 {
				rep.mu.Lock()
				defer rep.mu.Unlock()
				return rep.ewmaMs
			})
		reg.LabeledCounterFunc("planpool_replica_ejections_total",
			"Times this replica has been ejected or re-ejected.",
			"replica", rep.url,
			func() float64 {
				rep.mu.Lock()
				defer rep.mu.Unlock()
				return float64(rep.ejections)
			})
		reg.LabeledGaugeFunc("planpool_replica_consecutive_failures",
			"The replica's current consecutive-failure streak.",
			"replica", rep.url,
			func() float64 {
				rep.mu.Lock()
				defer rep.mu.Unlock()
				return float64(rep.failures)
			})
		reg.LabeledGaugeFunc("planpool_replica_state",
			"Replica lifecycle state: 0 active, 1 probation, 2 ejected.",
			"replica", rep.url,
			func() float64 {
				switch rep.state(c.now()) {
				case ReplicaEjected:
					return 2
				case ReplicaProbation:
					return 1
				default:
					return 0
				}
			})
	}
}
