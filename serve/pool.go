package serve

import (
	"context"
	"errors"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// ReplicaState is a replica's position in the ejection lifecycle.
type ReplicaState string

const (
	// ReplicaActive: in the load-balancing rotation.
	ReplicaActive ReplicaState = "active"
	// ReplicaEjected: out of rotation until the ejection cooldown ends.
	ReplicaEjected ReplicaState = "ejected"
	// ReplicaProbation: cooldown elapsed; trial traffic (a readiness
	// probe or one live request) decides between re-admittance and
	// re-ejection.
	ReplicaProbation ReplicaState = "probation"
)

// ReplicaStatus is an observability snapshot of one pool member.
type ReplicaStatus struct {
	URL                 string
	State               ReplicaState
	ConsecutiveFailures int
	// LatencyEWMAMs is the exponentially-weighted moving average of
	// successful-call latency (0 until the first success).
	LatencyEWMAMs float64
	InFlight      int64
	Ejections     int64
}

// ewmaAlpha weights the latest latency sample at 30%: new enough to
// track a replica that turns slow, smooth enough not to eject on one
// outlier sample.
const ewmaAlpha = 0.3

// replica is one pool member's live state.
type replica struct {
	url string

	inflight atomic.Int64

	mu           sync.Mutex
	failures     int // consecutive failures (live calls and probes)
	ewmaMs       float64
	ejected      bool
	ejectedUntil time.Time
	ejections    int64

	// Probe backoff: consecutive probe failures and the earliest time
	// the prober will try this replica again. A down replica is probed
	// at exponentially stretching, jittered intervals instead of every
	// tick — a dead host costs the prober (and the network) less and
	// less the longer it stays dead.
	probeFails int
	nextProbe  time.Time
}

func (r *replica) state(now time.Time) ReplicaState {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case !r.ejected:
		return ReplicaActive
	case now.After(r.ejectedUntil):
		return ReplicaProbation
	default:
		return ReplicaEjected
	}
}

// recordSuccess notes a successful live call: it clears the failure
// streak, re-admits a probation replica, and folds the latency sample
// into the EWMA.
func (r *replica) recordSuccess(latency time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.failures = 0
	r.ejected = false
	ms := float64(latency) / float64(time.Millisecond)
	if r.ewmaMs == 0 {
		r.ewmaMs = ms
	} else {
		r.ewmaMs = ewmaAlpha*ms + (1-ewmaAlpha)*r.ewmaMs
	}
}

// recordFailure notes a failed live call or probe. At threshold
// consecutive failures the replica is ejected for cooldown; a failure
// during probation re-ejects immediately. It reports whether this call
// ejected the replica.
func (r *replica) recordFailure(now time.Time, threshold int, cooldown time.Duration) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.failures++
	switch {
	case r.ejected && now.After(r.ejectedUntil):
		// Failed its probation trial: straight back out.
		r.ejectedUntil = now.Add(cooldown)
		r.ejections++
		return true
	case !r.ejected && r.failures >= threshold:
		r.ejected = true
		r.ejectedUntil = now.Add(cooldown)
		r.ejections++
		return true
	}
	return false
}

// readmit returns a probation replica to active duty (a successful
// readiness probe after the cooldown).
func (r *replica) readmit(now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ejected && now.After(r.ejectedUntil) {
		r.ejected = false
		r.failures = 0
	}
}

func (r *replica) status(now time.Time) ReplicaStatus {
	st := r.state(now)
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReplicaStatus{
		URL:                 r.url,
		State:               st,
		ConsecutiveFailures: r.failures,
		LatencyEWMAMs:       r.ewmaMs,
		InFlight:            r.inflight.Load(),
		Ejections:           r.ejections,
	}
}

// ---------------------------------------------------------------------
// replica selection

// pick chooses the replica for the next attempt. Preference order:
// active replicas the caller has not yet tried, then probation ones
// (their trial traffic), then already-tried active/probation replicas,
// then — when every replica is ejected and cooling — anything, because
// a guess beats refusing to try. Within a tier it is power-of-two-
// choices: two random candidates, lower in-flight count wins (latency
// EWMA breaks ties), which tracks sudden slowness far faster than
// round-robin without the herding of global-least-loaded.
func (c *Client) pick(tried map[*replica]bool) *replica {
	now := c.now()
	var fresh, freshProbation, burned []*replica
	for _, r := range c.replicas {
		st := r.state(now)
		if st == ReplicaEjected {
			continue
		}
		if tried[r] {
			// Deprioritised regardless of state: a retry or hedge wants
			// a replica that has not already been used by this call.
			burned = append(burned, r)
		} else if st == ReplicaActive {
			fresh = append(fresh, r)
		} else {
			freshProbation = append(freshProbation, r)
		}
	}
	switch {
	case len(fresh) > 0:
		return c.pickTwo(fresh)
	case len(freshProbation) > 0:
		return c.pickTwo(freshProbation)
	case len(burned) > 0:
		return c.pickTwo(burned)
	}
	// Everything is ejected and cooling: fall back to the full pool.
	return c.pickTwo(c.replicas)
}

// pickTwo is power-of-two-choices over a non-empty candidate slice.
func (c *Client) pickTwo(cands []*replica) *replica {
	if len(cands) == 1 {
		return cands[0]
	}
	i, j := c.twoIndices(len(cands))
	a, b := cands[i], cands[j]
	la, lb := a.inflight.Load(), b.inflight.Load()
	if la != lb {
		if la < lb {
			return a
		}
		return b
	}
	a.mu.Lock()
	ea := a.ewmaMs
	a.mu.Unlock()
	b.mu.Lock()
	eb := b.ewmaMs
	b.mu.Unlock()
	if eb < ea {
		return b
	}
	return a
}

// twoIndices draws two distinct random indices in [0, n).
func (c *Client) twoIndices(n int) (int, int) {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	i := c.rng.Intn(n)
	j := c.rng.Intn(n - 1)
	if j >= i {
		j++
	}
	return i, j
}

// ---------------------------------------------------------------------
// background readiness probing

// probeLoop polls every replica's /readyz on the configured interval
// until Close. Probing is what turns the pool from "retry around
// failures" into "route around them before they happen": a draining,
// breaker-open, or saturated replica fails its readiness probe and is
// ejected without a single live request paying for the discovery.
func (c *Client) probeLoop() {
	defer close(c.probeDone)
	ticker := time.NewTicker(c.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.probeStop:
			return
		case <-ticker.C:
			c.probeAll()
		}
	}
}

// probeAll probes every due replica concurrently (a blackholed
// replica's probe must not delay the others') and waits for the round
// to finish. Replicas inside their probe-backoff window are skipped.
func (c *Client) probeAll() {
	now := c.now()
	var wg sync.WaitGroup
	for _, r := range c.replicas {
		r.mu.Lock()
		due := !now.Before(r.nextProbe)
		r.mu.Unlock()
		if !due {
			continue
		}
		wg.Add(1)
		go func(r *replica) {
			defer wg.Done()
			c.probeOne(r)
		}(r)
	}
	wg.Wait()
}

// probeOne checks one replica's readiness. /readyz is authoritative; a
// 404 falls back to /healthz so the pool still protects a pre-readiness
// server. Success re-admits a probation replica; failure feeds the same
// consecutive-failure ejection as live traffic. A probe success never
// clears live-call failures on an active replica: a replica can be
// "ready" and still corrupting or timing out live responses, and only
// live successes should vouch for those.
func (c *Client) probeOne(r *replica) {
	timeout := c.cfg.ProbeInterval
	if timeout > time.Second {
		timeout = time.Second
	}
	// Derived from probeCtx, not Background: Close cancels probeCtx, so
	// a probe blocked on an unresponsive replica unblocks immediately
	// instead of holding Close for the rest of its timeout.
	ctx, cancel := context.WithTimeout(c.probeCtx, timeout)
	defer cancel()
	ok := c.probeURL(ctx, r.url+"/readyz")
	if !ok && c.probeStatus(ctx, r.url+"/readyz") == http.StatusNotFound {
		ok = c.probeURL(ctx, r.url+"/healthz")
	}
	if ok {
		r.readmit(c.now())
		r.mu.Lock()
		r.probeFails, r.nextProbe = 0, time.Time{}
		r.mu.Unlock()
		return
	}
	if r.recordFailure(c.now(), c.cfg.EjectThreshold, c.cfg.EjectCooldown) {
		c.ejections.Add(1)
	}
	c.backoffProbe(r)
}

// backoffProbe schedules a failed replica's next probe with jittered
// exponential backoff: delay doubles per consecutive probe failure,
// jittered uniformly over [0.5×, 1.5×] so many pools watching the same
// dead replica don't re-probe it in lockstep, capped at ProbeMaxBackoff.
func (c *Client) backoffProbe(r *replica) {
	r.mu.Lock()
	fails := r.probeFails
	r.probeFails++
	r.mu.Unlock()

	delay := c.cfg.ProbeInterval << uint(min(fails, 20))
	if delay <= 0 || delay > c.cfg.ProbeMaxBackoff {
		delay = c.cfg.ProbeMaxBackoff
	}
	c.rngMu.Lock()
	jittered := time.Duration((0.5 + c.rng.Float64()) * float64(delay))
	c.rngMu.Unlock()

	next := c.now().Add(jittered)
	r.mu.Lock()
	r.nextProbe = next
	r.mu.Unlock()
}

// probeURL reports whether a GET of url answers 2xx within ctx.
func (c *Client) probeURL(ctx context.Context, url string) bool {
	return c.probeStatus(ctx, url)/100 == 2
}

// probeStatus returns the status code of a GET of url, or 0 on
// transport failure.
func (c *Client) probeStatus(ctx context.Context, url string) int {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	return resp.StatusCode
}

// Replicas snapshots every pool member's state, most-recently-defined
// order preserved.
func (c *Client) Replicas() []ReplicaStatus {
	now := c.now()
	out := make([]ReplicaStatus, len(c.replicas))
	for i, r := range c.replicas {
		out[i] = r.status(now)
	}
	return out
}

// Ejections returns how many times any replica has been ejected (or
// re-ejected) by probes or live failures.
func (c *Client) Ejections() int64 { return c.ejections.Load() }

// CorruptRejected returns how many responses the client has rejected
// after they failed independent plan re-verification.
func (c *Client) CorruptRejected() int64 { return c.corruptRejected.Load() }

// Close stops the background readiness prober (a no-op for clients
// created without one). The client remains usable for calls; Close only
// ends the probing.
func (c *Client) Close() {
	c.closeOnce.Do(func() {
		if c.probeStop != nil {
			close(c.probeStop)
			c.probeCancel() // unblock any in-flight probe immediately
			<-c.probeDone
		}
	})
}

// ErrNoReplicas reports a pool constructed with no replica URLs.
var ErrNoReplicas = errors.New("serve: replica pool needs at least one URL")
