package heteropart_test

import (
	"fmt"

	heteropart "repro"
)

// ExampleSearch runs the paper's Push search and classifies the terminal
// shape.
func ExampleSearch() {
	res, err := heteropart.Search(heteropart.SearchConfig{
		N:     60,
		Ratio: heteropart.MustRatio(2, 1, 1),
		Seed:  1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("converged:", res.Converged)
	fmt.Println("VoC never increased:", res.FinalVoC <= res.InitialVoC)
	fmt.Println("archetype known:", heteropart.Classify(res.Final) != heteropart.ArchetypeUnknown)
	// Output:
	// converged: true
	// VoC never increased: true
	// archetype known: true
}

// ExampleOptimal compares the six candidates for a highly heterogeneous
// platform.
func ExampleOptimal() {
	m := heteropart.DefaultMachine(heteropart.MustRatio(20, 1, 1))
	best, _, err := heteropart.Optimal(heteropart.SCB, m, 200)
	if err != nil {
		panic(err)
	}
	fmt.Println(best)
	// Output:
	// Square-Corner
}

// ExampleBuildShape constructs a canonical candidate and reports its
// communication volume.
func ExampleBuildShape() {
	ratio := heteropart.MustRatio(2, 2, 1)
	fmt.Println("square-corner feasible:", heteropart.SquareCornerFeasible(ratio))
	g, err := heteropart.BuildShape(heteropart.BlockRectangle, 100, ratio)
	if err != nil {
		panic(err)
	}
	// Analytic volume: band height h = 60 rows cost 1 each, every column
	// costs 1 → (60+100)·N = 16000 elements, plus at most a couple of
	// boundary lines from integral raggedness.
	fmt.Println("block-rectangle VoC close to analytic:", g.VoC() >= 16000 && g.VoC() <= 16300)
	// Output:
	// square-corner feasible: false
	// block-rectangle VoC close to analytic: true
}

// ExampleSquareCornerFeasible shows the Theorem 9.1 boundary.
func ExampleSquareCornerFeasible() {
	for _, pr := range []float64{2, 3, 10} {
		ratio := heteropart.MustRatio(pr, 1, 1)
		fmt.Printf("%v: %v\n", ratio, heteropart.SquareCornerFeasible(ratio))
	}
	// Output:
	// 2:1:1: true
	// 3:1:1: true
	// 10:1:1: true
}
