package heteropart

import (
	"strings"
	"testing"
)

func TestCensusFacade(t *testing.T) {
	rows, err := Census(CensusConfig{
		N: 36, RunsPerRatio: 3, Seed: 2, Beautify: true,
		Ratios: []Ratio{MustRatio(2, 1, 1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	var sb strings.Builder
	if err := WriteCensusTable(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "2:1:1") {
		t.Error("table missing ratio")
	}
}

func TestFig14Facade(t *testing.T) {
	rows, err := Fig14Sweep([]float64{5, 15}, 5000, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].SCModel <= rows[1].SCModel {
		t.Error("SC model time should fall with heterogeneity")
	}
}

func TestPhaseDiagramFacade(t *testing.T) {
	wm, err := PhaseDiagram(SCB, FullyConnected, 2, 12, 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(wm.Cells) == 0 {
		t.Fatal("empty phase diagram")
	}
}

func TestSearchTraceFacade(t *testing.T) {
	tr, err := SearchTrace(30, MustRatio(3, 1, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Monotone() {
		t.Error("trace must be monotone")
	}
}

func TestGanttChartFacade(t *testing.T) {
	ratio := MustRatio(10, 1, 1)
	g, err := BuildShape(SquareCorner, 80, ratio)
	if err != nil {
		t.Fatal(err)
	}
	chart, err := GanttChart(SCO, DefaultMachine(ratio), g, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chart, "overlap-P") {
		t.Errorf("chart missing overlap row:\n%s", chart)
	}
}

func TestTwoProcFacade(t *testing.T) {
	s, err := TwoProcOptimal(SCB, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s != TwoProcSquareCorner {
		t.Errorf("optimal at 10:1 = %v", s)
	}
	s, err = TwoProcOptimal(PCB, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s != TwoProcStraightLine {
		t.Errorf("optimal at 2:1 = %v", s)
	}
	g, err := BuildTwoProc(TwoProcSquareCorner, 60, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.Count(S) != 0 {
		t.Error("two-proc build should leave S empty")
	}
	if _, err := TwoProcOptimal(SCB, 0.5); err == nil {
		t.Error("bad ratio should error")
	}
	if _, err := BuildTwoProc(TwoProcStraightLine, 60, 0.5); err == nil {
		t.Error("bad ratio should error")
	}
}

func TestNProcFacade(t *testing.T) {
	res, err := NProcSearch(NProcConfig{
		N: 30, Ratio: NProcRatio{4, 2, 1, 1}, Seed: 1, FullDirections: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.FinalVoC > res.InitialVoC {
		t.Error("4-proc search misbehaved")
	}
}
