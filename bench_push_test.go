package heteropart

// Hot-path benchmarks for the Push search engine. These four benchmarks
// bracket the layers the census rests on — the grid fingerprint, a single
// Push attempt, a full condensation, and the parallel census itself — and
// their before/after numbers are recorded in BENCH_push.json whenever the
// engine's hot path changes.

import (
	"math/rand"
	"testing"

	"repro/internal/experiment"
	"repro/internal/geom"
	"repro/internal/partition"
	"repro/internal/push"
)

// BenchmarkFingerprint measures the cycle-detection hash the condensation
// loop consults after every committed Push.
func BenchmarkFingerprint(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := partition.NewRandom(256, MustRatio(2, 1, 1), rng)
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= g.Fingerprint()
	}
	if sink == 42 {
		b.Log(sink) // keep the loop from being optimised away
	}
}

// BenchmarkAttempt measures single Push attempts (successful early on,
// failing probes once the grid condenses) on a paper-scale grid.
func BenchmarkAttempt(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := partition.NewRandom(256, MustRatio(2, 1, 1), rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := partition.Procs[i%2]
		d := geom.AllDirections[i%4]
		push.AttemptAny(g, p, d, nil, nil)
	}
}

// BenchmarkCondense measures a full condensation — the body of one DFA run
// — from a fixed random start at N=256.
func BenchmarkCondense(b *testing.B) {
	const n = 256
	rng := rand.New(rand.NewSource(1))
	start := partition.NewRandom(n, MustRatio(3, 2, 1), rng)
	plan := push.FullPlan()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := start.Clone()
		if steps, _ := push.Condense(g, plan, nil, 0); steps == 0 {
			b.Fatal("condense made no progress")
		}
	}
}

// BenchmarkCensus measures the parallel census harness end to end:
// many DFA runs on one ratio, classification included.
func BenchmarkCensus(b *testing.B) {
	cfg := experiment.CensusConfig{
		N:            64,
		RunsPerRatio: 16,
		Ratios:       []partition.Ratio{MustRatio(2, 1, 1)},
		Seed:         1,
		Beautify:     true,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiment.Census(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 1 {
			b.Fatal("bad census")
		}
	}
}
